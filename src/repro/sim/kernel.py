"""A small deterministic discrete-event simulation kernel.

The kernel follows the familiar generator-based process model (as
popularised by SimPy) at the API surface: a *process* is a Python
generator that yields waitables and is resumed when they fire.
Simulated time only advances between events, so a multi-second
distributed experiment runs in milliseconds of wall-clock time and is
exactly reproducible.

Internally the event core is **array-structured** (see
``docs/KERNEL.md`` for the guided tour): the pending-event heap holds
``(when, sequence, handle)`` triples where ``handle`` is an integer
index into four parallel lists — kind tag plus up to three payload
slots — and a free-list recycles handles as events dispatch.  The
dominant event populations (network deliveries via
:meth:`Environment.call_later`, number-sleeps, queue hand-offs) never
allocate an :class:`Event` at all; the run loop dispatches on the kind
tag and runs their fast paths inline.  Generator processes and the full
:class:`Event` machinery (combinators, joins, interrupts) remain as the
slow-path escape hatch behind the ``_K_EVENT`` kind tag.

Every fast path consumes exactly one sequence number and one heap slot,
the same as the Event-based form it replaces, so switching a call site
between forms never perturbs event ordering — the determinism rule all
optimization work in this repo lives by (``docs/PERFORMANCE.md``).

Only the features the reproduction needs are implemented: one-shot
events, timeouts, process-join, ``AllOf``/``AnyOf`` combinators,
interrupts, and the :class:`Channel` wait protocol used by
:mod:`repro.sim.queues`.  Ties in the event heap are broken by
insertion order, which makes every run deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

# -- event-kind tags --------------------------------------------------------
#
# One small-int tag per heap-entry flavour, ordered roughly by dispatch
# frequency in a cluster benchmark.  Payload slot usage per kind:
#
#   kind       a            b            c        dispatch
#   _K_CALL    fn           arg          -        fn(arg)
#   _K_RESUME  process      channel      value    resume process with value
#                                                 (guarded: still waiting
#                                                 on that channel)
#   _K_SLEEP   process      epoch        -        wake a number-sleep
#                                                 (guarded: epoch match)
#   _K_SINK    channel      item         -        channel handler + pump
#   _K_THROW   process      channel      exc      throw exc into process
#                                                 (guarded like _K_RESUME)
#   _K_EVENT   event        -            -        generic Event trigger
#                                                 (slow path: callbacks)

_K_CALL = 0
_K_RESUME = 1
_K_SLEEP = 2
_K_SINK = 3
_K_THROW = 4
_K_EVENT = 5

#: Human-readable kind names, indexable by tag (docs/diagnostics).
KIND_NAMES = ("call", "resume", "sleep", "sink", "throw", "event")


class SimulationError(RuntimeError):
    """Raised for misuse of the kernel (e.g. running a finished env)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes can wait on.

    An event starts *pending*; it fires at most once via :meth:`succeed`
    or :meth:`fail`.  Processes waiting on it are scheduled to resume at
    the simulation time of the trigger.

    Events are the kernel's *slow path*: a triggered event occupies one
    ``_K_EVENT`` handle in the array core and runs its callback list
    when dispatched.  Hot call sites (deliveries, sleeps, queue
    hand-offs) use the Event-free kinds instead.
    """

    __slots__ = ("env", "_value", "_ok", "_triggered", "_callbacks", "_name")

    #: Class tag for the yield dispatcher: channels override to True.
    _sim_channel = False

    def __init__(self, env: "Environment", name: str = ""):
        self.env = env
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._callbacks: List[Callable[["Event"], None]] = []
        self._name = name

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event has not been triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully, delivering ``value`` to waiters."""
        if self._triggered:
            raise SimulationError(f"event {self._name!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        # Inlined handle allocation: succeed() fires once per process
        # step and per slow-path hand-off, so the extra call frames
        # were measurable.
        env = self.env
        env._sequence += 1
        free = env._free
        if free:
            handle = free.pop()
            env._ev_kind[handle] = _K_EVENT
            env._ev_a[handle] = self
        else:
            handle = len(env._ev_kind)
            env._ev_kind.append(_K_EVENT)
            env._ev_a.append(self)
            env._ev_b.append(None)
            env._ev_c.append(None)
        heapq.heappush(env._heap, (env._now, env._sequence, handle))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event as a failure; waiters see ``exception`` raised."""
        if self._triggered:
            raise SimulationError(f"event {self._name!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        env = self.env
        env._sequence += 1
        free = env._free
        if free:
            handle = free.pop()
            env._ev_kind[handle] = _K_EVENT
            env._ev_a[handle] = self
        else:
            handle = len(env._ev_kind)
            env._ev_kind.append(_K_EVENT)
            env._ev_a.append(self)
            env._ev_b.append(None)
            env._ev_c.append(None)
        heapq.heappush(env._heap, (env._now, env._sequence, handle))
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event fires.

        If the event has fired already the callback runs immediately.
        """
        if self._triggered:
            callback(self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self._name!r} {state}>"


class Timeout(Event):
    """An event that fires automatically after a fixed delay.

    Only constructed when the caller needs a waitable handle (e.g. to
    pass to :class:`AnyOf`); fire-and-forget delays use
    :meth:`Environment.call_later` and plain ``yield delay`` sleeps use
    the ``_K_SLEEP`` fast path, neither of which allocates an Event.
    The constructor is written flat (no ``super().__init__`` chain, no
    per-instance name formatting) because timeouts still dominate the
    Event-slow-path population.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.env = env
        self._value = value
        self._ok = True
        self._triggered = False
        self._callbacks = []
        self._name = "timeout"
        self.delay = delay
        # The trigger is deferred: the run loop marks the timeout as
        # triggered when its handle pops at ``now + delay``.
        env._sequence += 1
        free = env._free
        if free:
            handle = free.pop()
            env._ev_kind[handle] = _K_EVENT
            env._ev_a[handle] = self
        else:
            handle = len(env._ev_kind)
            env._ev_kind.append(_K_EVENT)
            env._ev_a.append(self)
            env._ev_b.append(None)
            env._ev_c.append(None)
        heapq.heappush(env._heap, (env._now + delay, env._sequence, handle))


class Channel:
    """Base class for waitable FIFO channels (``yield channel``).

    The kernel's side of the channel wait protocol:
    :mod:`repro.sim.queues` subclasses this with the user-facing API.
    A process that yields a channel either consumes an item immediately
    (scheduling its own ``_K_RESUME`` at the current time — exactly one
    sequence number, mirroring the Event-based ``get()`` form) or parks
    itself on ``_waiters`` until a producer hands it an item.

    ``_waiters`` may also hold plain :class:`Event` getters created by
    the legacy ``Queue.get()`` API; producers discriminate by class, so
    the two wait styles share one FIFO order.

    A channel with a ``_handler`` installed is a *sink*: items are
    dispatched to the handler function via ``_K_SINK`` entries instead
    of waking a consumer process (see ``docs/KERNEL.md``).
    """

    __slots__ = ("env", "_items", "_waiters", "_closed", "_handler",
                 "_pumping")

    _sim_channel = True

    #: Tracer gauge label for backlog depth; subclasses with named
    #: instances (repro.sim.queues.Queue) shadow this with a slot so
    #: the kernel's consume fast paths can report dequeues too —
    #: falsy means "unnamed, do not record".
    _depth_key = ""

    def _closed_error(self) -> BaseException:
        """The exception thrown into waiters when the channel closes."""
        raise NotImplementedError  # pragma: no cover - subclass duty


ProcessGenerator = Generator[Any, Any, Any]


class Process(Event):
    """A running simulation process.

    A process wraps a generator; each yielded waitable — an
    :class:`Event`, a :class:`Channel`, or a plain number (sleep) —
    suspends the process until it fires.  The process itself is an
    event that fires with the generator's return value, so other
    processes can join on it by yielding it.
    """

    __slots__ = ("_generator", "_waiting_on", "_interrupts", "_sleep_epoch")

    def __init__(self, env: "Environment", generator: ProcessGenerator, name: str = ""):
        super().__init__(env, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Optional[Any] = None
        self._interrupts: List[Interrupt] = []
        #: Invalidates in-flight sleep wake-ups after an interrupt/re-sleep.
        self._sleep_epoch = 0
        # Kick the process off at the current simulation time.
        start = Event(env, name=f"start:{self._name}")
        start.add_callback(self._resume)
        start.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op, mirroring SimPy.
        """
        if self._triggered:
            return
        self._interrupts.append(Interrupt(cause))
        waiting = self._waiting_on
        if waiting is not None:
            self._waiting_on = None
            if waiting._sim_channel:
                # Detach from the channel's waiter queue so a later
                # put() cannot hand an item to the interrupted process
                # (the in-flight _K_RESUME guard covers the case where
                # the hand-off was already scheduled).
                try:
                    waiting._waiters.remove(self)
                except ValueError:
                    pass
            # Detach: when the original waitable fires later, ignore it.
            poke = Event(self.env, name=f"interrupt:{self._name}")
            poke.add_callback(self._resume)
            poke.succeed()

    # -- resumption -----------------------------------------------------
    #
    # Three entry points share the yielded-target handling:
    #   _resume(event)       - Event-callback slow path (start, pokes,
    #                          joins, combinators, legacy get())
    #   _resume_value(value)  - hot path, called by the run loop for
    #                          _K_RESUME and _K_SLEEP dispatches
    #   _resume_throw(exc)    - failure path (_K_THROW, failed events,
    #                          interrupts)
    #
    # _resume_value inlines the number-sleep and channel-wait branches
    # (the two dominant yields in a cluster run) and only the rarer
    # Event yield goes through _wait_event.

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return
        self._waiting_on = None
        if self._interrupts:
            self._resume_throw(self._interrupts.pop(0))
        elif event._ok:
            self._resume_value(event._value)
        else:
            self._resume_throw(event._value)

    def _resume_value(self, value: Any) -> None:
        if self._triggered:
            return
        if self._interrupts:
            self._resume_throw(self._interrupts.pop(0))
            return
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into joiners
            if self.env.strict:
                raise
            self.fail(exc)
            return
        cls = target.__class__
        if cls is float or cls is int:
            # Sleep fast path: ``yield delay`` behaves exactly like
            # ``yield env.timeout(delay)`` — one heap slot, the same
            # sequence number the Timeout would have drawn — without
            # allocating an Event.  ``_waiting_on = self`` is a non-None
            # marker so interrupt() still pokes the sleeper; the epoch
            # invalidates the stale wake-up afterwards.
            if target < 0:
                raise ValueError(f"negative timeout delay: {target}")
            epoch = self._sleep_epoch + 1
            self._sleep_epoch = epoch
            self._waiting_on = self
            env = self.env
            env._sequence += 1
            free = env._free
            if free:
                handle = free.pop()
                env._ev_kind[handle] = _K_SLEEP
                env._ev_a[handle] = self
                env._ev_b[handle] = epoch
            else:
                handle = len(env._ev_kind)
                env._ev_kind.append(_K_SLEEP)
                env._ev_a.append(self)
                env._ev_b.append(epoch)
                env._ev_c.append(None)
            heapq.heappush(env._heap,
                           (env._now + target, env._sequence, handle))
            return
        try:
            is_channel = target._sim_channel
        except AttributeError:
            raise SimulationError(
                f"process {self._name!r} yielded {target!r}, "
                f"expected an Event, a Channel, or a number"
            ) from None
        if is_channel:
            # Channel wait fast path: mirrors ``yield queue.get()``
            # exactly — an available item schedules the resume at the
            # current time for one sequence number (the one the get()
            # Event's succeed() would have drawn); an empty channel
            # parks the process with no sequence number consumed.
            self._waiting_on = target
            items = target._items
            if items:
                value = items.popleft()
                env = self.env
                env._sequence += 1
                free = env._free
                if free:
                    handle = free.pop()
                    env._ev_kind[handle] = _K_RESUME
                    env._ev_a[handle] = self
                    env._ev_b[handle] = target
                    env._ev_c[handle] = value
                else:
                    handle = len(env._ev_kind)
                    env._ev_kind.append(_K_RESUME)
                    env._ev_a.append(self)
                    env._ev_b.append(target)
                    env._ev_c.append(value)
                heapq.heappush(env._heap, (env._now, env._sequence, handle))
                # Dequeue side of the queue-depth gauge (no event is
                # recorded, so fingerprints are unchanged).
                tracer = env.tracer
                if tracer is not None and target._depth_key:
                    tracer.queue_depth(target._depth_key, len(items))
            elif target._closed:
                self.env._schedule_throw(self, target, target._closed_error())
            else:
                target._waiters.append(self)
            return
        self._wait_event(target)

    def _resume_throw(self, exception: BaseException) -> None:
        if self._triggered:
            return
        try:
            target = self._generator.throw(exception)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into joiners
            if self.env.strict:
                raise
            self.fail(exc)
            return
        cls = target.__class__
        if cls is float or cls is int:
            if target < 0:
                raise ValueError(f"negative timeout delay: {target}")
            epoch = self._sleep_epoch + 1
            self._sleep_epoch = epoch
            self._waiting_on = self
            env = self.env
            env._sequence += 1
            free = env._free
            if free:
                handle = free.pop()
                env._ev_kind[handle] = _K_SLEEP
                env._ev_a[handle] = self
                env._ev_b[handle] = epoch
            else:
                handle = len(env._ev_kind)
                env._ev_kind.append(_K_SLEEP)
                env._ev_a.append(self)
                env._ev_b.append(epoch)
                env._ev_c.append(None)
            heapq.heappush(env._heap,
                           (env._now + target, env._sequence, handle))
            return
        try:
            is_channel = target._sim_channel
        except AttributeError:
            raise SimulationError(
                f"process {self._name!r} yielded {target!r}, "
                f"expected an Event, a Channel, or a number"
            ) from None
        if is_channel:
            self._waiting_on = target
            items = target._items
            if items:
                self.env._schedule_resume(self, target, items.popleft())
                tracer = self.env.tracer
                if tracer is not None and target._depth_key:
                    tracer.queue_depth(target._depth_key, len(items))
            elif target._closed:
                self.env._schedule_throw(self, target, target._closed_error())
            else:
                target._waiters.append(self)
            return
        self._wait_event(target)

    def _wait_event(self, target: Event) -> None:
        self._waiting_on = target
        # Inlined target.add_callback(self._guarded_resume): this is the
        # per-yield path for every Event wait in the simulation.
        if target._triggered:
            self._guarded_resume(target)
        else:
            target._callbacks.append(self._guarded_resume)

    def _guarded_resume(self, event: Event) -> None:
        # Only resume if we are still waiting on this event (we may have
        # been interrupted and re-armed in the meantime).
        if self._waiting_on is event:
            self._resume(event)


class AllOf(Event):
    """Fires once every child event has fired successfully.

    The value is the list of child values, in the order given.  If any
    child fails, this event fails with that child's exception.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, name="all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._triggered:
            return
        if not child._ok:
            self.fail(child._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c._value for c in self._children])


class AnyOf(Event):
    """Fires when the first child event fires; value is ``(index, value)``."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, name="any_of")
        self._children = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        for index, child in enumerate(self._children):
            child.add_callback(lambda c, i=index: self._on_child(i, c))

    def _on_child(self, index: int, child: Event) -> None:
        if self._triggered:
            return
        if child._ok:
            self.succeed((index, child._value))
        else:
            self.fail(child._value)


class Environment:
    """Event loop holding the simulation clock and the pending-event heap.

    The heap holds ``(when, sequence, handle)`` triples; the handle
    indexes the parallel ``_ev_kind`` / ``_ev_a`` / ``_ev_b`` /
    ``_ev_c`` lists and is recycled through ``_free`` when the entry
    dispatches.  Because the live-event population is bounded by the
    in-flight work of the simulation (not its length), the arrays stay
    small and recycled handles stay in CPython's small-int cache — the
    steady state allocates no per-event objects at all for the fast
    paths.  See ``docs/KERNEL.md``.
    """

    def __init__(self, strict: bool = True, tracer: Optional[Any] = None):
        self._now: float = 0.0
        self._heap: List[tuple] = []
        self._sequence = 0
        self._running = False
        # Parallel event arrays + handle free-list (the array core).
        self._ev_kind: List[int] = []
        self._ev_a: List[Any] = []
        self._ev_b: List[Any] = []
        self._ev_c: List[Any] = []
        self._free: List[int] = []
        #: When True, exceptions escaping a process abort the simulation
        #: instead of being stored as the process's failure value.
        self.strict = strict
        #: Optional :class:`repro.obs.Tracer`.  The kernel never imports
        #: ``repro.obs``; any object with the hook methods works.  When
        #: None (the default) instrumented code pays one identity test
        #: per hook site and records nothing.
        self.tracer = tracer

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    # -- array-core introspection --------------------------------------

    @property
    def live_handle_high_watermark(self) -> int:
        """Peak number of simultaneously-live event handles.

        The arrays only grow when every recycled handle is in use, so
        their length *is* the high-watermark; it should track in-flight
        work (windows x clients), never run length.
        """
        return len(self._ev_kind)

    @property
    def handles_scheduled(self) -> int:
        """Total events ever scheduled (every push draws one sequence
        number and one handle)."""
        return self._sequence

    @property
    def free_list_reuse_rate(self) -> float:
        """Fraction of schedules served by recycling a freed handle."""
        if self._sequence == 0:
            return 0.0
        return 1.0 - len(self._ev_kind) / self._sequence

    # -- scheduling ---------------------------------------------------

    def _alloc(self, kind: int, a: Any, b: Any, c: Any) -> int:
        """Allocate a handle (recycling via the free-list) — slow-path
        helper; hot sites inline this."""
        free = self._free
        if free:
            handle = free.pop()
            self._ev_kind[handle] = kind
            self._ev_a[handle] = a
            self._ev_b[handle] = b
            self._ev_c[handle] = c
        else:
            handle = len(self._ev_kind)
            self._ev_kind.append(kind)
            self._ev_a.append(a)
            self._ev_b.append(b)
            self._ev_c.append(c)
        return handle

    def _schedule_at(self, when: float, event: Event) -> None:
        self._sequence += 1
        heapq.heappush(self._heap,
                       (when, self._sequence,
                        self._alloc(_K_EVENT, event, None, None)))

    def _schedule_trigger(self, event: Event) -> None:
        """Schedule callbacks of an already-triggered event at time now."""
        self._schedule_at(self._now, event)

    def _schedule_resume(self, process: Process, channel: Channel,
                         value: Any) -> None:
        """Hand ``value`` to a channel-waiting process at time now
        (one sequence number, like the get()-Event succeed it mirrors)."""
        self._sequence += 1
        heapq.heappush(self._heap,
                       (self._now, self._sequence,
                        self._alloc(_K_RESUME, process, channel, value)))

    def _schedule_throw(self, process: Process, channel: Channel,
                        exception: BaseException) -> None:
        """Throw ``exception`` into a channel-waiting process at time
        now (one sequence number, like the failed get()-Event)."""
        self._sequence += 1
        heapq.heappush(self._heap,
                       (self._now, self._sequence,
                        self._alloc(_K_THROW, process, channel, exception)))

    def _schedule_sink(self, channel: Channel, item: Any) -> None:
        """Dispatch ``item`` to a sink channel's handler at time now."""
        self._sequence += 1
        heapq.heappush(self._heap,
                       (self._now, self._sequence,
                        self._alloc(_K_SINK, channel, item, None)))

    # -- public API ---------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def call_later(self, delay: float, fn: Callable[[Any], None], arg: Any = None) -> None:
        """Schedule ``fn(arg)`` to run after ``delay`` — the deferred-call
        fast path.

        Equivalent to ``self.timeout(delay).add_callback(...)`` but
        without allocating an Event or a callback list: the call lives
        in a recycled ``_K_CALL`` handle.  Use only for fire-and-forget
        work: there is no handle to wait on, and the call cannot be
        cancelled.  Consumes one heap slot and one sequence number,
        exactly like the Timeout it replaces, so switching a call site
        between the two forms never perturbs event ordering.
        """
        if delay < 0:
            raise ValueError(f"negative call_later delay: {delay}")
        self._sequence += 1
        free = self._free
        if free:
            handle = free.pop()
            self._ev_kind[handle] = _K_CALL
            self._ev_a[handle] = fn
            self._ev_b[handle] = arg
        else:
            handle = len(self._ev_kind)
            self._ev_kind.append(_K_CALL)
            self._ev_a.append(fn)
            self._ev_b.append(arg)
            self._ev_c.append(None)
        heapq.heappush(self._heap, (self._now + delay, self._sequence, handle))

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        if self.tracer is not None:
            self.tracer.counter("kernel.processes")
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or simulated time reaches ``until``.

        The loop body is the single hottest code in the repo, so it is
        written for speed: the heap, the event arrays, and the free-list
        are bound to locals, dispatch switches on the kind tag with the
        most frequent kinds first, and the per-event tracer hooks are
        replaced by a local dispatch count and heap-depth high-watermark
        flushed once at exit.  The flushed values are numerically
        identical to what per-event ``counter``/``queue_depth`` calls
        would have produced (integer sums and maxima commute), so trace
        fingerprints and BENCH artifacts are unchanged.
        """
        if self._running:
            raise SimulationError("environment is already running")
        self._running = True
        tracer = self.tracer
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        kinds = self._ev_kind
        arg_a = self._ev_a
        arg_b = self._ev_b
        arg_c = self._ev_c
        free = self._free
        free_append = free.append
        dispatched = 0
        peak_depth = -1
        try:
            while heap:
                when = heap[0][0]
                if until is not None and when > until:
                    self._now = until
                    return
                entry = pop(heap)
                self._now = when
                if tracer is not None:
                    dispatched += 1
                    depth = len(heap)
                    if depth > peak_depth:
                        peak_depth = depth
                handle = entry[2]
                kind = kinds[handle]
                a = arg_a[handle]
                b = arg_b[handle]
                # Release the slot before dispatching: the payload may
                # itself schedule (and so recycle the handle), and
                # clearing the refs keeps dead messages collectable.
                arg_a[handle] = None
                arg_b[handle] = None
                free_append(handle)
                if kind == 0:  # _K_CALL
                    a(b)
                elif kind == 1:  # _K_RESUME
                    c = arg_c[handle]
                    arg_c[handle] = None
                    if a._waiting_on is b:
                        a._waiting_on = None
                        a._resume_value(c)
                elif kind == 2:  # _K_SLEEP
                    # Stale if the process was interrupted, finished, or
                    # moved on since this sleep was scheduled.
                    if (a._waiting_on is a and b == a._sleep_epoch
                            and not a._triggered):
                        a._waiting_on = None
                        a._resume_value(None)
                elif kind == 3:  # _K_SINK
                    a._handler(b)
                    # Pump: hand the next queued item to the handler at
                    # a fresh sequence number — exactly when (and with
                    # the sequence number that) a generator consumer's
                    # re-issued get() would have consumed it.
                    items = a._items
                    if items:
                        item = items.popleft()
                        self._sequence += 1
                        if free:
                            nxt = free.pop()
                            kinds[nxt] = 3
                            arg_a[nxt] = a
                            arg_b[nxt] = item
                        else:
                            nxt = len(kinds)
                            kinds.append(3)
                            arg_a.append(a)
                            arg_b.append(item)
                            arg_c.append(None)
                        push(heap, (when, self._sequence, nxt))
                        if tracer is not None:
                            dk = a._depth_key
                            if dk:
                                tracer.queue_depth(dk, len(items))
                    else:
                        a._pumping = False
                elif kind == 4:  # _K_THROW
                    c = arg_c[handle]
                    arg_c[handle] = None
                    if a._waiting_on is b:
                        a._waiting_on = None
                        a._resume_throw(c)
                else:  # _K_EVENT
                    if not a._triggered:
                        # Deferred triggers (timeouts) fire when popped.
                        a._triggered = True
                    callbacks = a._callbacks
                    a._callbacks = []
                    for callback in callbacks:
                        callback(a)
            if until is not None:
                self._now = until
        finally:
            self._running = False
            if tracer is not None and dispatched:
                tracer.counter("kernel.dispatched", dispatched)
                tracer.queue_depth("kernel.heap", peak_depth)

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or None if the heap is empty."""
        return self._heap[0][0] if self._heap else None
