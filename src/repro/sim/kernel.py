"""A small deterministic discrete-event simulation kernel.

The kernel follows the familiar generator-based process model (as
popularised by SimPy): a *process* is a Python generator that yields
:class:`Event` objects and is resumed when those events fire.  Simulated
time only advances between events, so a multi-second distributed experiment
runs in milliseconds of wall-clock time and is exactly reproducible.

Only the features the reproduction needs are implemented: one-shot events,
timeouts, process-join, ``AllOf``/``AnyOf`` combinators and interrupts.
Ties in the event heap are broken by insertion order, which makes every
run deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the kernel (e.g. running a finished env)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes can wait on.

    An event starts *pending*; it fires at most once via :meth:`succeed`
    or :meth:`fail`.  Processes waiting on it are scheduled to resume at
    the simulation time of the trigger.
    """

    __slots__ = ("env", "_value", "_ok", "_triggered", "_callbacks", "_name")

    def __init__(self, env: "Environment", name: str = ""):
        self.env = env
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._callbacks: List[Callable[["Event"], None]] = []
        self._name = name

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event has not been triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully, delivering ``value`` to waiters."""
        if self._triggered:
            raise SimulationError(f"event {self._name!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        # Inlined env._schedule_trigger: succeed() fires once per queue
        # hand-off and once per process step, so the extra call frames
        # were measurable.
        env = self.env
        env._sequence += 1
        heapq.heappush(env._heap, (env._now, env._sequence, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event as a failure; waiters see ``exception`` raised."""
        if self._triggered:
            raise SimulationError(f"event {self._name!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        env = self.env
        env._sequence += 1
        heapq.heappush(env._heap, (env._now, env._sequence, self))
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event fires.

        If the event has fired already the callback runs immediately.
        """
        if self._triggered:
            callback(self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self._name!r} {state}>"


class Timeout(Event):
    """An event that fires automatically after a fixed delay.

    Timeouts dominate the event population of a cluster run (every
    service time, network delivery, and backoff is one), so the
    constructor is written flat: no ``super().__init__`` chain and no
    per-instance name formatting — profiling showed the f-string alone
    cost more than the heap push.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.env = env
        self._value = value
        self._ok = True
        self._triggered = False
        self._callbacks = []
        self._name = "timeout"
        self.delay = delay
        # The trigger is deferred: the environment marks the timeout as
        # triggered when it pops it from the heap at ``now + delay``.
        env._sequence += 1
        heapq.heappush(env._heap, (env._now + delay, env._sequence, self))


# The timeout fast path schedules a bare ``(fn, arg)`` tuple in the
# heap slot an Event would occupy: for fire-and-forget delays (network
# deliveries, process sleeps) the full Event machinery — instance,
# callback list, triggered bookkeeping — is pure overhead, and even a
# tiny wrapper class would pay a Python-level ``__init__`` frame per
# delivery.  The run loop recognizes the tuple and invokes ``fn(arg)``.
# A deferred call occupies exactly one heap slot and one sequence
# number, the same as the Timeout it replaces, so event ordering and
# the dispatched-event count are unchanged.


class AllOf(Event):
    """Fires once every child event has fired successfully.

    The value is the list of child values, in the order given.  If any
    child fails, this event fails with that child's exception.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, name="all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._triggered:
            return
        if not child._ok:
            self.fail(child._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c._value for c in self._children])


class AnyOf(Event):
    """Fires when the first child event fires; value is ``(index, value)``."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, name="any_of")
        self._children = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        for index, child in enumerate(self._children):
            child.add_callback(lambda c, i=index: self._on_child(i, c))

    def _on_child(self, index: int, child: Event) -> None:
        if self._triggered:
            return
        if child._ok:
            self.succeed((index, child._value))
        else:
            self.fail(child._value)


ProcessGenerator = Generator[Event, Any, Any]


class _SleepFired:
    """Sentinel handed to :meth:`Process._resume` when a plain-number
    sleep expires; mimics a successfully-triggered valueless Event."""

    __slots__ = ()
    _ok = True
    _value = None


_SLEEP_FIRED = _SleepFired()


class Process(Event):
    """A running simulation process.

    A process wraps a generator; each yielded :class:`Event` suspends the
    process until the event fires.  The process itself is an event that
    fires with the generator's return value, so other processes can join
    on it by yielding it.
    """

    __slots__ = ("_generator", "_waiting_on", "_interrupts", "_sleep_epoch")

    def __init__(self, env: "Environment", generator: ProcessGenerator, name: str = ""):
        super().__init__(env, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._interrupts: List[Interrupt] = []
        #: Invalidates in-flight sleep wake-ups after an interrupt/re-sleep.
        self._sleep_epoch = 0
        # Kick the process off at the current simulation time.
        start = Event(env, name=f"start:{self._name}")
        start.add_callback(self._resume)
        start.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op, mirroring SimPy.
        """
        if self._triggered:
            return
        self._interrupts.append(Interrupt(cause))
        waiting = self._waiting_on
        if waiting is not None:
            self._waiting_on = None
            # Detach: when the original event fires later, ignore it.
            poke = Event(self.env, name=f"interrupt:{self._name}")
            poke.add_callback(self._resume)
            poke.succeed()

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return
        self._waiting_on = None
        try:
            if self._interrupts:
                interrupt = self._interrupts.pop(0)
                target = self._generator.throw(interrupt)
            elif event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into joiners
            if self.env.strict:
                raise
            self.fail(exc)
            return
        cls = target.__class__
        if cls is float or cls is int:
            # Sleep fast path: ``yield delay`` behaves exactly like
            # ``yield env.timeout(delay)`` — one heap slot, the same
            # sequence number the Timeout would have drawn — without
            # allocating an Event.  ``_waiting_on = self`` is a non-None
            # marker so interrupt() still pokes the sleeper; the epoch
            # invalidates the stale wake-up afterwards.
            if target < 0:
                raise ValueError(f"negative timeout delay: {target}")
            epoch = self._sleep_epoch + 1
            self._sleep_epoch = epoch
            self._waiting_on = self
            env = self.env
            env._sequence += 1
            heapq.heappush(env._heap,
                           (env._now + target, env._sequence,
                            (self._sleep_fire, epoch)))
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self._name!r} yielded {target!r}, expected an Event"
            )
        self._waiting_on = target
        # Inlined target.add_callback(self._guarded_resume): this is the
        # per-yield hot path for every process in the simulation.
        if target._triggered:
            self._guarded_resume(target)
        else:
            target._callbacks.append(self._guarded_resume)

    def _sleep_fire(self, epoch: int) -> None:
        # Stale if the process was interrupted, finished, or moved on to
        # waiting for something else since this sleep was scheduled.
        if (self._triggered or self._waiting_on is not self
                or epoch != self._sleep_epoch):
            return
        self._resume(_SLEEP_FIRED)

    def _guarded_resume(self, event: Event) -> None:
        # Only resume if we are still waiting on this event (we may have
        # been interrupted and re-armed in the meantime).
        if self._waiting_on is event:
            self._resume(event)


class Environment:
    """Event loop holding the simulation clock and the pending-event heap."""

    def __init__(self, strict: bool = True, tracer: Optional[Any] = None):
        self._now: float = 0.0
        self._heap: List[tuple] = []
        self._sequence = 0
        self._running = False
        #: When True, exceptions escaping a process abort the simulation
        #: instead of being stored as the process's failure value.
        self.strict = strict
        #: Optional :class:`repro.obs.Tracer`.  The kernel never imports
        #: ``repro.obs``; any object with the hook methods works.  When
        #: None (the default) instrumented code pays one identity test
        #: per hook site and records nothing.
        self.tracer = tracer

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    # -- scheduling ---------------------------------------------------

    def _schedule_at(self, when: float, event: Event) -> None:
        self._sequence += 1
        heapq.heappush(self._heap, (when, self._sequence, event))

    def _schedule_trigger(self, event: Event) -> None:
        """Schedule callbacks of an already-triggered event at time now."""
        self._schedule_at(self._now, event)

    # -- public API ---------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def call_later(self, delay: float, fn: Callable[[Any], None], arg: Any = None) -> None:
        """Schedule ``fn(arg)`` to run after ``delay`` — the timeout fast path.

        Equivalent to ``self.timeout(delay).add_callback(...)`` but without
        allocating an Event or a callback list.  Use only for fire-and-forget
        work: there is no handle to wait on, and the call cannot be cancelled.
        Consumes one heap slot and one sequence number, exactly like the
        Timeout it replaces, so switching a call site between the two forms
        never perturbs event ordering.
        """
        if delay < 0:
            raise ValueError(f"negative call_later delay: {delay}")
        self._sequence += 1
        heapq.heappush(self._heap, (self._now + delay, self._sequence, (fn, arg)))

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        if self.tracer is not None:
            self.tracer.counter("kernel.processes")
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or simulated time reaches ``until``.

        The loop body is the single hottest code in the repo, so it is
        written for speed: ``heappop`` and the heap list are bound to
        locals, and the per-event tracer hooks are replaced by a local
        dispatch count and heap-depth high-watermark flushed once at
        exit.  The flushed values are numerically identical to what
        per-event ``counter``/``queue_depth`` calls would have produced
        (integer sums and maxima commute), so trace fingerprints and
        BENCH artifacts are unchanged.
        """
        if self._running:
            raise SimulationError("environment is already running")
        self._running = True
        tracer = self.tracer
        heap = self._heap
        pop = heapq.heappop
        dispatched = 0
        peak_depth = -1
        try:
            while heap:
                when = heap[0][0]
                if until is not None and when > until:
                    self._now = until
                    return
                event = pop(heap)[2]
                self._now = when
                if tracer is not None:
                    dispatched += 1
                    depth = len(heap)
                    if depth > peak_depth:
                        peak_depth = depth
                if event.__class__ is tuple:
                    event[0](event[1])
                    continue
                if not event._triggered:
                    # Deferred triggers (timeouts) fire when popped.
                    event._triggered = True
                callbacks, event._callbacks = event._callbacks, []
                for callback in callbacks:
                    callback(event)
            if until is not None:
                self._now = until
        finally:
            self._running = False
            if tracer is not None and dispatched:
                tracer.counter("kernel.dispatched", dispatched)
                tracer.queue_depth("kernel.heap", peak_depth)

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or None if the heap is empty."""
        return self._heap[0][0] if self._heap else None
