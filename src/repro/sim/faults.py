"""Deterministic fault injection for the simulated testbed.

The base :mod:`repro.sim.network` models exactly one failure shape — a
down endpoint silently dropping traffic — which lets every protocol
service above it assume reliable, ordered, exactly-once delivery.  A
:class:`FaultPlan` breaks that assumption on purpose: per-link
probabilistic message **drop**, **duplication** and bounded **reorder**
delay, scheduled bidirectional **partitions** between endpoint groups,
and metadata-store **outages** / latency spikes.  All decisions come
from one seeded RNG, so a chaos run is exactly reproducible from
``(cluster seed, fault seed)`` — the same property the kernel promises
for fault-free runs.

A plan is pluggable: :class:`~repro.sim.network.Network` consults
``plan.deliveries()`` per message, and
:class:`~repro.cluster.metadata.MetadataStore` consults
``plan.metadata_delay()`` per access.  With no plan installed the
simulation behaves (and draws randomness) exactly as before.
"""

from __future__ import annotations

import fnmatch
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.sim.rand import Seedable, make_rng


@dataclass(frozen=True)
class LinkFault:
    """Probabilistic delivery faults on links matching ``src -> dst``.

    ``src``/``dst`` are ``fnmatch`` glob patterns over endpoint
    addresses (``"worker-*"``, ``"*"``); the first rule in plan order
    that matches a message decides its fate.  Probabilities are
    per-message; a duplicated message yields two independent copies, and
    a reordered copy is delayed by up to ``reorder_delay`` extra seconds
    (bounded, so delivery is late but never lost).
    """

    src: str = "*"
    dst: str = "*"
    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    #: Upper bound on the extra delay of a reordered or duplicated copy.
    reorder_delay: float = 2e-3

    def matches(self, src: str, dst: str) -> bool:
        return (fnmatch.fnmatchcase(src, self.src)
                and fnmatch.fnmatchcase(dst, self.dst))


@dataclass(frozen=True)
class Partition:
    """A scheduled bidirectional partition between two endpoint groups.

    While ``start <= now < end``, every message between a member of
    ``group_a`` and a member of ``group_b`` (either direction) is
    dropped.  Group members are glob patterns; traffic within one group
    is unaffected.
    """

    group_a: Tuple[str, ...]
    group_b: Tuple[str, ...]
    start: float
    end: float

    def severs(self, src: str, dst: str, now: float) -> bool:
        if not (self.start <= now < self.end):
            return False
        return ((self._member(src, self.group_a)
                 and self._member(dst, self.group_b))
                or (self._member(src, self.group_b)
                    and self._member(dst, self.group_a)))

    @staticmethod
    def _member(address: str, group: Tuple[str, ...]) -> bool:
        return any(fnmatch.fnmatchcase(address, pattern)
                   for pattern in group)


@dataclass(frozen=True)
class MetadataOutage:
    """Metadata store unavailable during ``[start, end)``.

    Accesses started inside the window stall until the outage lifts
    (plus the normal round trip).  Long outages force the finder
    service's coordinator to fail over, which pushes
    :class:`~repro.core.finder.hybrid.HybridDprFinder` onto its
    approximate fallback (§3.4).
    """

    start: float
    end: float


@dataclass(frozen=True)
class MetadataSpike:
    """Latency spike: accesses in ``[start, end)`` pay ``extra`` more."""

    start: float
    end: float
    extra: float


class FaultPlan:
    """A seeded, replayable schedule of injected faults.

    The plan owns one RNG stream, separate from the simulation's own
    generators, so the *schedule* of faults is a pure function of the
    fault seed and the (deterministic) order of delivery decisions.
    ``injected`` counts what actually fired, for assertions that a chaos
    scenario exercised every fault shape it claimed to.
    """

    def __init__(
        self,
        seed: Seedable,
        links: Sequence[LinkFault] = (),
        partitions: Sequence[Partition] = (),
        metadata_outages: Sequence[MetadataOutage] = (),
        metadata_spikes: Sequence[MetadataSpike] = (),
    ):
        self.seed = seed
        self._rng = make_rng(seed)
        self.links = tuple(links)
        self.partitions = tuple(partitions)
        self.metadata_outages = tuple(metadata_outages)
        self.metadata_spikes = tuple(metadata_spikes)
        self.injected: Dict[str, int] = {
            "dropped": 0,
            "duplicated": 0,
            "reordered": 0,
            "partitioned": 0,
            "metadata_outages": 0,
            "metadata_spikes": 0,
        }
        self._tracer = None

    def bind_tracer(self, tracer) -> None:
        """Mirror every future ``injected`` increment into ``tracer``
        counters (``faults.dropped`` etc.).  Pass None to unbind."""
        self._tracer = tracer

    def _inject(self, kind: str) -> None:
        self.injected[kind] += 1
        if self._tracer is not None:
            self._tracer.counter("faults." + kind)

    def replay(self) -> "FaultPlan":
        """A fresh plan with the same schedule and a rewound RNG.

        Plans are stateful (RNG position, counters); reruns of the same
        scenario must use a replayed plan, never the consumed one.
        """
        if isinstance(self.seed, random.Random):
            raise ValueError(
                "replay() needs an int-seeded plan; construct FaultPlan "
                "with an integer seed to make runs replayable"
            )
        return FaultPlan(self.seed, self.links, self.partitions,
                         self.metadata_outages, self.metadata_spikes)

    # -- network faults ----------------------------------------------------

    def deliveries(self, src: str, dst: str, now: float) -> List[float]:
        """Extra delays for each delivered copy of one message.

        ``[]`` means the message is lost (partition or probabilistic
        drop); ``[0.0]`` is a normal single delivery; a reordered copy
        carries a positive extra delay; duplication appends a second,
        independently delayed copy.
        """
        for partition in self.partitions:
            if partition.severs(src, dst, now):
                self._inject("partitioned")
                return []
        rule = self._rule_for(src, dst)
        if rule is None:
            return [0.0]
        rng = self._rng
        if rule.drop > 0.0 and rng.random() < rule.drop:
            self._inject("dropped")
            return []
        extra = 0.0
        if rule.reorder > 0.0 and rng.random() < rule.reorder:
            extra = rng.uniform(0.0, rule.reorder_delay)
            self._inject("reordered")
        copies = [extra]
        if rule.duplicate > 0.0 and rng.random() < rule.duplicate:
            copies.append(extra + rng.uniform(0.0, rule.reorder_delay))
            self._inject("duplicated")
        return copies

    def _rule_for(self, src: str, dst: str) -> Optional[LinkFault]:
        for rule in self.links:
            if rule.matches(src, dst):
                return rule
        return None

    # -- metadata faults ---------------------------------------------------

    def metadata_delay(self, now: float) -> float:
        """Extra latency for a metadata access starting at ``now``."""
        delay = 0.0
        for outage in self.metadata_outages:
            if outage.start <= now < outage.end:
                self._inject("metadata_outages")
                delay = max(delay, outage.end - now)
        for spike in self.metadata_spikes:
            if spike.start <= now < spike.end:
                self._inject("metadata_spikes")
                delay += spike.extra
        return delay
