"""Seeded randomness helpers.

Every stochastic component takes an explicit :class:`random.Random` (or a
seed) so whole experiments are reproducible.  ``spawn`` derives stream-
independent child generators from a parent, mirroring numpy's SeedSequence
idea without requiring numpy in the core library.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Union

Seedable = Union[int, random.Random, None]


def make_rng(seed: Seedable = None) -> random.Random:
    """Return a :class:`random.Random` from a seed, rng, or None."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn(parent: random.Random, label: str) -> random.Random:
    """Derive a child generator whose stream is independent of siblings.

    The child is seeded from the parent's stream combined with ``label``
    so that adding a new consumer does not perturb existing ones as long
    as labels are drawn in a fixed order.  A stable (non-salted) hash is
    used so whole experiments reproduce bit-for-bit across processes.
    """
    base = parent.getrandbits(64)
    digest = hashlib.blake2b(f"{base}:{label}".encode(),
                             digest_size=8).digest()
    return random.Random(int.from_bytes(digest, "big"))


def exponential(rng: random.Random, mean: float) -> float:
    """Exponential sample with the given mean (mean=0 returns 0)."""
    if mean <= 0:
        return 0.0
    return rng.expovariate(1.0 / mean)


def bounded_normal(
    rng: random.Random,
    mean: float,
    stddev: float,
    minimum: float = 0.0,
    maximum: Optional[float] = None,
) -> float:
    """Normal sample clamped to ``[minimum, maximum]``."""
    value = rng.gauss(mean, stddev)
    if value < minimum:
        value = minimum
    if maximum is not None and value > maximum:
        value = maximum
    return value
