"""A Kafka-style partitioned persistent log as a cache-store (§2, §3).

The paper names logging systems as the third cache-store class (with
key-value stores and caches): "a simple write-ahead or operation log
with periodic group commit may also be viewed as a StateObject
implementation" (§3).  Example 2 (serverless workflows) is built on
exactly this: operators enqueue to and dequeue from log shards, and DPR
lets a downstream operator consume *uncommitted* enqueues while commits
arrive lazily.

This package provides:

- :class:`~repro.logstore.log.PartitionedLog` — append-only records
  with offsets, per-partition ordering, consumer-group cursors, and
  group-commit durability (a durable frontier per partition);
- :class:`~repro.logstore.state_object.LogStateObject` — the DPR
  adapter: versions stamp appends, ``Restore()`` truncates each
  partition back to the restored version's frontier and rewinds
  consumer cursors that ran ahead of it.
"""

from repro.logstore.log import ConsumerGroup, LogRecord, PartitionedLog
from repro.logstore.state_object import LogStateObject

__all__ = [
    "ConsumerGroup",
    "LogRecord",
    "LogStateObject",
    "PartitionedLog",
]
