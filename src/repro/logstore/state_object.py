"""The partitioned log as a DPR StateObject.

Operations are tuples:

- ``("append", partition, payload)``  -> offset
- ``("poll", group_id, partition)``    -> payload or None (advances the
  group cursor — a *dequeue* in the paper's Example 2 terminology)
- ``("peek", partition, offset)``      -> payload or None (no cursor)
- ``("end_offset", partition)``        -> next offset
- ``("positions", group_id)``          -> cursor map

``Commit()`` is the log's group commit: a seal snapshots each
partition's tail as that version's durable frontier.  ``Restore()``
truncates partitions back to the restored version's frontiers and
rewinds consumer cursors — so a dequeue of a rolled-back enqueue is
re-delivered rather than lost, which is exactly the prefix-consistent
behaviour serverless workflows need.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.core.state_object import StateObject
from repro.logstore.log import PartitionedLog


class LogStateObject(StateObject):
    """One log broker shard under DPR."""

    RECORD_BYTES = 128

    def __init__(self, object_id: str, **kwargs):
        super().__init__(object_id, **kwargs)
        self.log = PartitionedLog()
        #: version -> {partition: durable frontier at seal time}.
        self._frontiers: Dict[int, Dict[str, int]] = {}
        #: version -> consumer positions at seal time (cursors are part
        #: of recoverable state: a committed dequeue must not re-deliver).
        self._cursors: Dict[int, Dict[str, Dict[str, int]]] = {}

    # -- operations --------------------------------------------------------

    def apply(self, op: Tuple) -> Any:
        kind = op[0]
        if kind == "append" or kind == "enqueue":
            record = self.log.append(op[1], op[2], version=self.version)
            return record.offset
        if kind == "poll" or kind == "dequeue":
            records = self.log.poll(op[1], op[2], max_records=1)
            return records[0].payload if records else None
        if kind == "peek":
            record = self.log.peek(op[1], op[2])
            return record.payload if record else None
        if kind == "end_offset":
            return self.log.end_offset(op[1])
        if kind == "positions":
            return self.log.group(op[1]).positions()
        raise ValueError(f"unknown op {kind!r}")

    # -- Commit()/Restore() hooks ----------------------------------------------

    def snapshot(self, version: int) -> None:
        self._frontiers[version] = self.log.group_commit()
        self._cursors[version] = {
            group_id: group.positions()
            for group_id, group in self.log._groups.items()
        }

    def checkpoint_bytes(self, version: int) -> int:
        frontiers = self._frontiers.get(version, {})
        earlier = [v for v in self._frontiers if v < version]
        base = self._frontiers[max(earlier)] if earlier else {}
        delta = sum(
            frontier - base.get(partition, 0)
            for partition, frontier in frontiers.items()
        )
        return max(1, delta) * self.RECORD_BYTES

    def rollback_to(self, version: int) -> None:
        candidates = [v for v in self._frontiers if v <= version]
        if candidates:
            target = max(candidates)
            self.log.truncate_to(self._frontiers[target])
            snapshot = self._cursors.get(target, {})
        else:
            self.log.truncate_to({p: 0 for p in self.log.partitions()})
            snapshot = {}
        # Every cursor — including groups created after the restored
        # version — resets to its snapshot position (absent = 0): an
        # uncommitted dequeue rolls back and re-delivers.
        for group_id, group in self.log._groups.items():
            group.reset(snapshot.get(group_id, {}))
        for stale in [v for v in self._frontiers if v > version]:
            del self._frontiers[stale]
            self._cursors.pop(stale, None)

    # -- conveniences ---------------------------------------------------------------

    def enqueue(self, partition: str, payload: Any) -> int:
        return self.execute(("append", partition, payload)).value

    def dequeue(self, group_id: str, partition: str) -> Any:
        return self.execute(("poll", group_id, partition)).value
