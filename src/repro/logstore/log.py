"""A partitioned, append-only log with consumer groups.

Semantics follow the Kafka subset DPR needs:

- records append to a named partition and receive a dense offset;
- consumers read through *consumer groups*, each holding one cursor per
  partition; reads advance the cursor (at-least-once on rewind);
- durability is a per-partition *durable frontier*: a group commit
  flushes everything below the current tail (periodically in real
  deployments — explicitly here, so DPR can trigger it as ``Commit()``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class LogRecord:
    """One log entry."""

    partition: str
    offset: int
    payload: Any
    #: DPR version stamp of the append (0 outside DPR).
    version: int = 0


class ConsumerGroup:
    """Per-partition read cursors shared by a group of consumers."""

    def __init__(self, group_id: str):
        self.group_id = group_id
        self._cursors: Dict[str, int] = {}

    def position(self, partition: str) -> int:
        return self._cursors.get(partition, 0)

    def advance(self, partition: str, to_offset: int) -> None:
        if to_offset > self.position(partition):
            self._cursors[partition] = to_offset

    def rewind(self, partition: str, to_offset: int) -> None:
        """Move backwards (recovery: re-deliver rolled-back reads)."""
        if to_offset < self.position(partition):
            self._cursors[partition] = to_offset

    def reset(self, positions: Dict[str, int]) -> None:
        """Force all cursors to a recovered snapshot (absent = 0)."""
        for partition in list(self._cursors):
            self._cursors[partition] = positions.get(partition, 0)
        for partition, offset in positions.items():
            self._cursors[partition] = offset

    def positions(self) -> Dict[str, int]:
        return dict(self._cursors)


class PartitionedLog:
    """The broker: partitions, appends, reads, group commit."""

    def __init__(self):
        self._partitions: Dict[str, List[LogRecord]] = {}
        #: Offsets below this are durable, per partition.
        self._durable: Dict[str, int] = {}
        self._groups: Dict[str, ConsumerGroup] = {}

    # -- partitions -------------------------------------------------------

    def create_partition(self, partition: str) -> None:
        self._partitions.setdefault(partition, [])
        self._durable.setdefault(partition, 0)

    def partitions(self) -> List[str]:
        return list(self._partitions)

    def end_offset(self, partition: str) -> int:
        """The next offset to be assigned (== partition length)."""
        return len(self._partitions.get(partition, ()))

    def durable_offset(self, partition: str) -> int:
        return self._durable.get(partition, 0)

    # -- producing -----------------------------------------------------------

    def append(self, partition: str, payload: Any,
               version: int = 0) -> LogRecord:
        self.create_partition(partition)
        records = self._partitions[partition]
        record = LogRecord(partition=partition, offset=len(records),
                           payload=payload, version=version)
        records.append(record)
        return record

    # -- consuming --------------------------------------------------------------

    def group(self, group_id: str) -> ConsumerGroup:
        if group_id not in self._groups:
            self._groups[group_id] = ConsumerGroup(group_id)
        return self._groups[group_id]

    def poll(self, group_id: str, partition: str,
             max_records: int = 1) -> List[LogRecord]:
        """Read (and advance past) up to ``max_records`` entries.

        Uncommitted records are served — that is the whole point of DPR
        over a log: dequeues need not wait for enqueue commits.
        """
        group = self.group(group_id)
        start = group.position(partition)
        records = self._partitions.get(partition, [])[
            start:start + max_records]
        if records:
            group.advance(partition, records[-1].offset + 1)
        return list(records)

    def peek(self, partition: str, offset: int) -> Optional[LogRecord]:
        records = self._partitions.get(partition, [])
        if 0 <= offset < len(records):
            return records[offset]
        return None

    # -- durability ------------------------------------------------------------------

    def group_commit(self) -> Dict[str, int]:
        """Flush every partition to its tail; returns the new frontiers."""
        for partition, records in self._partitions.items():
            self._durable[partition] = len(records)
        return dict(self._durable)

    def unflushed_records(self) -> int:
        return sum(
            len(records) - self._durable.get(partition, 0)
            for partition, records in self._partitions.items()
        )

    # -- recovery ----------------------------------------------------------------------

    def truncate_to(self, frontiers: Dict[str, int]) -> int:
        """Crash semantics: drop records above each durable frontier.

        Consumer cursors that ran ahead of a truncation point rewind to
        it, so re-delivery after recovery starts exactly at the first
        lost record.  Returns the number of records dropped.
        """
        dropped = 0
        for partition, records in self._partitions.items():
            frontier = frontiers.get(partition, 0)
            dropped += max(0, len(records) - frontier)
            del records[frontier:]
            self._durable[partition] = min(
                self._durable.get(partition, 0), frontier)
            for group in self._groups.values():
                group.rewind(partition, frontier)
        return dropped

    def scan(self, partition: str,
             from_offset: int = 0) -> Iterator[LogRecord]:
        for record in self._partitions.get(partition, [])[from_offset:]:
            yield record
