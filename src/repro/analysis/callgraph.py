"""A project-wide call-graph model for interprocedural rules.

Nodes are functions and methods, named ``module.func`` or
``module.Class.method``.  Edges are resolved statically, best-effort,
in decreasing order of confidence:

1. **Direct names** — ``helper()`` resolves to a function defined in
   the same module, else through the module's import map to a function
   or class defined elsewhere in the project.
2. **Self/cls calls** — ``self.m()`` resolves to ``m`` on the lexically
   enclosing class or, walking project-resolved base classes, on an
   ancestor.
3. **Dotted names** — ``mod.func()`` / ``Class.method()`` resolve
   through the import map against the project's definition index.
4. **Unique-attribute heuristic** — ``obj.m()`` with an unresolvable
   receiver resolves iff exactly one project function is named ``m``
   and ``m`` is not a ubiquitous container-protocol name.  This is the
   one deliberately unsound step (a duck-typed ``obj.m()`` may hit a
   different ``m`` at runtime); DPR-A02's docs list it as a false-
   positive source, and suppressions at the call site are the remedy.

The graph is deliberately call-site-preserving: ``callers``/``callees``
give qualname adjacency for fixpoints, while :class:`CallSite` keeps
the AST node so rules can attach findings to the exact call expression.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.framework import ModuleInfo, Project, dotted_name

#: Attribute names too generic for the unique-name fallback: container
#: and messaging verbs that appear on dicts, queues, files and sockets
#: alike.  Resolving ``anything.get()`` to the one project ``get`` would
#: manufacture edges out of thin air.
UBIQUITOUS_ATTRS = frozenset({
    "get", "put", "pop", "add", "append", "extend", "remove", "discard",
    "clear", "copy", "update", "items", "keys", "values", "setdefault",
    "send", "close", "read", "write", "open", "join", "split", "strip",
    "encode", "decode", "sort", "index", "count", "insert", "register",
    "succeed", "run", "process", "start", "stop",
})


class CallSite:
    """One call expression inside a function body."""

    __slots__ = ("node", "callee")

    def __init__(self, node: ast.Call, callee: str):
        self.node = node
        self.callee = callee


class FunctionInfo:
    """One function or method definition in the project."""

    __slots__ = ("qualname", "module", "class_name", "node", "calls")

    def __init__(self, qualname: str, module: ModuleInfo,
                 class_name: Optional[str], node: ast.AST):
        self.qualname = qualname
        self.module = module
        self.class_name = class_name
        self.node = node
        self.calls: List[CallSite] = []


class CallGraph:
    """Definition index + resolved call edges over a :class:`Project`."""

    def __init__(self, project: Project):
        self.project = project
        #: qualname -> FunctionInfo
        self.functions: Dict[str, FunctionInfo] = {}
        #: bare name -> sorted qualnames defining it (for the heuristic).
        self._by_name: Dict[str, List[str]] = {}
        #: module.Class -> resolved base qualnames (module.Class).
        self._bases: Dict[str, List[str]] = {}
        #: module.Class -> {method name -> qualname}
        self._methods: Dict[str, Dict[str, str]] = {}
        self._collect_definitions()
        self._resolve_calls()

    # -- construction ------------------------------------------------------

    def _collect_definitions(self) -> None:
        for module in self.project.modules:
            imports = module.import_map()
            for stmt in module.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._add_function(module, None, stmt)
                elif isinstance(stmt, ast.ClassDef):
                    class_qual = f"{module.module}.{stmt.name}"
                    bases: List[str] = []
                    for base in stmt.bases:
                        resolved = self._resolve_dotted(base, module, imports)
                        if resolved:
                            bases.append(resolved)
                    self._bases[class_qual] = bases
                    table = self._methods.setdefault(class_qual, {})
                    for item in stmt.body:
                        if isinstance(item, (ast.FunctionDef,
                                             ast.AsyncFunctionDef)):
                            info = self._add_function(module, stmt.name, item)
                            table[item.name] = info.qualname

    def _add_function(self, module: ModuleInfo, class_name: Optional[str],
                      node: ast.AST) -> FunctionInfo:
        name = node.name  # type: ignore[attr-defined]
        if class_name:
            qualname = f"{module.module}.{class_name}.{name}"
        else:
            qualname = f"{module.module}.{name}"
        info = FunctionInfo(qualname, module, class_name, node)
        self.functions[qualname] = info
        self._by_name.setdefault(name, []).append(qualname)
        return info

    def _resolve_dotted(self, node: ast.AST, module: ModuleInfo,
                        imports: Dict[str, str]) -> Optional[str]:
        """Resolve a Name/Attribute chain to a project class qualname."""
        chain = dotted_name(node)
        if chain is None:
            return None
        head, _, rest = chain.partition(".")
        origin = imports.get(head)
        if origin is None:
            # A class defined in this module.
            candidate = f"{module.module}.{chain}"
            return candidate
        resolved = f"{origin}.{rest}" if rest else origin
        return resolved

    def _resolve_calls(self) -> None:
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            imports = info.module.import_map()
            own_defs = {
                f.split(".")[-1]
                for f in self.functions
                if self.functions[f].module is info.module
                and self.functions[f].class_name is None
            }
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = self._resolve_call(node, info, imports, own_defs)
                if callee is not None and callee in self.functions:
                    info.calls.append(CallSite(node, callee))

    def _resolve_call(self, node: ast.Call, info: FunctionInfo,
                      imports: Dict[str, str],
                      own_defs: Set[str]) -> Optional[str]:
        func = node.func
        module = info.module
        if isinstance(func, ast.Name):
            if func.id in own_defs:
                return f"{module.module}.{func.id}"
            origin = imports.get(func.id)
            if origin is not None:
                return self._match_qualname(origin)
            return None
        if isinstance(func, ast.Attribute):
            receiver = func.value
            method = func.attr
            if isinstance(receiver, ast.Name) and receiver.id in ("self",
                                                                  "cls"):
                if info.class_name is not None:
                    class_qual = f"{module.module}.{info.class_name}"
                    found = self._lookup_method(class_qual, method)
                    if found is not None:
                        return found
                return self._unique_by_name(method)
            resolved = self._resolve_attr_chain(func, module, imports)
            if resolved is not None:
                return resolved
            return self._unique_by_name(method)
        return None

    def _resolve_attr_chain(self, func: ast.Attribute, module: ModuleInfo,
                            imports: Dict[str, str]) -> Optional[str]:
        chain = dotted_name(func)
        if chain is None:
            return None
        head, _, rest = chain.partition(".")
        if not rest:
            return None
        origin = imports.get(head)
        if origin is None:
            # ``LocalClass.method(...)`` on a class in this module.
            origin = f"{module.module}.{head}"
            candidate = f"{origin}.{rest}"
            return self._match_qualname(candidate)
        return self._match_qualname(f"{origin}.{rest}")

    def _match_qualname(self, dotted: str) -> Optional[str]:
        """A dotted path to a known function, walking method tables.

        Tries the literal qualname first, then ``Class.method`` lookups
        through resolved base classes.
        """
        if dotted in self.functions:
            return dotted
        head, _, method = dotted.rpartition(".")
        if head in self._methods:
            return self._lookup_method(head, method)
        return None

    def _lookup_method(self, class_qual: str, method: str,
                       _seen: Optional[Set[str]] = None) -> Optional[str]:
        seen = _seen if _seen is not None else set()
        if class_qual in seen:
            return None
        seen.add(class_qual)
        table = self._methods.get(class_qual)
        if table is not None and method in table:
            return table[method]
        for base in self._bases.get(class_qual, ()):
            found = self._lookup_method(base, method, seen)
            if found is not None:
                return found
        return None

    def _unique_by_name(self, name: str) -> Optional[str]:
        if name in UBIQUITOUS_ATTRS or name.startswith("__"):
            return None
        candidates = self._by_name.get(name, ())
        if len(candidates) == 1:
            return candidates[0]
        return None

    # -- queries -----------------------------------------------------------

    def callees(self, qualname: str) -> Iterator[str]:
        info = self.functions.get(qualname)
        if info is not None:
            for site in info.calls:
                yield site.callee

    def reverse_edges(self) -> Dict[str, List[str]]:
        """callee qualname -> sorted caller qualnames."""
        reverse: Dict[str, Set[str]] = {}
        for qualname in sorted(self.functions):
            for callee in self.callees(qualname):
                reverse.setdefault(callee, set()).add(qualname)
        return {k: sorted(v) for k, v in reverse.items()}

    def functions_in(self, module: ModuleInfo) -> Iterator[FunctionInfo]:
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            if info.module is module:
                yield info
