"""A small statement-level CFG and forward dataflow engine.

dprlint's per-file rules are syntactic: one AST walk, one finding per
matching node.  The yield-point atomicity family (DPR-A01) needs more —
whether a local is *stale* at a use depends on the path taken through
the function (was a ``yield`` crossed since the assignment?), so the
rule runs a forward may-analysis to a fixpoint over a control-flow
graph.

The CFG here is deliberately statement-grained: each node is one
:mod:`ast` statement, and intra-statement ordering (loads happen before
an embedded ``yield``, stores after it) is the *client's* job via its
transfer function.  That granularity is exactly enough for the
preemption-point rules and keeps the graph construction small and
auditable.

Approximations (all conservative for a may-analysis):

- ``try`` bodies may jump to any handler after any statement; we edge
  from the body entry and every body statement to each handler.
- ``with`` is transparent (no special exit edges).
- ``match`` statements (3.10+) are treated as opaque straight-line
  statements — the tree has none, and the analyzer must parse under
  Python 3.9.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterator, List, Optional, Tuple

#: Sentinel node ids for the synthetic entry/exit of a function CFG.
ENTRY = -1
EXIT = -2


class CFG:
    """Control-flow graph over the statements of one function body.

    Nodes are integer ids; ``stmt_of`` maps a node id back to its
    :mod:`ast` statement.  ``ENTRY`` and ``EXIT`` are synthetic.
    """

    def __init__(self) -> None:
        self.stmt_of: Dict[int, ast.stmt] = {}
        self.succ: Dict[int, List[int]] = {ENTRY: [], EXIT: []}

    def _new_node(self, stmt: ast.stmt) -> int:
        node = len(self.stmt_of)
        self.stmt_of[node] = stmt
        self.succ[node] = []
        return node

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.succ[src]:
            self.succ[src].append(dst)

    def nodes(self) -> Iterator[int]:
        return iter(self.stmt_of)


class _Builder:
    """Recursive CFG construction with a loop stack for break/continue."""

    def __init__(self) -> None:
        self.cfg = CFG()
        #: (continue-target, break-target accumulator) per open loop.
        self._loops: List[Tuple[int, List[int]]] = []

    def build(self, body: List[ast.stmt]) -> CFG:
        exits = self._sequence(body, [ENTRY])
        for node in exits:
            self.cfg._edge(node, EXIT)
        return self.cfg

    def _sequence(self, body: List[ast.stmt],
                  preds: List[int]) -> List[int]:
        for stmt in body:
            preds = self._statement(stmt, preds)
        return preds

    def _statement(self, stmt: ast.stmt, preds: List[int]) -> List[int]:
        cfg = self.cfg
        node = cfg._new_node(stmt)
        for pred in preds:
            cfg._edge(pred, node)
        if isinstance(stmt, ast.If):
            then_exits = self._sequence(stmt.body, [node])
            else_exits = (self._sequence(stmt.orelse, [node])
                          if stmt.orelse else [node])
            return then_exits + else_exits
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            breaks: List[int] = []
            self._loops.append((node, breaks))
            body_exits = self._sequence(stmt.body, [node])
            self._loops.pop()
            for exit_node in body_exits:
                cfg._edge(exit_node, node)  # back edge re-tests the guard
            after: List[int] = [node] + breaks
            if stmt.orelse:
                after = self._sequence(stmt.orelse, [node]) + breaks
            return after
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._sequence(stmt.body, [node])
        if isinstance(stmt, ast.Try):
            body_exits = self._sequence(stmt.body, [node])
            # Conservative: any point in the try body may raise into any
            # handler — collect the body's nodes as handler predecessors.
            body_nodes = [n for n, s in cfg.stmt_of.items()
                          if _contains_stmt(stmt.body, s)]
            exits: List[int] = []
            for handler in stmt.handlers:
                h_exits = self._sequence(handler.body,
                                         [node] + body_nodes)
                exits.extend(h_exits)
            else_exits = (self._sequence(stmt.orelse, body_exits)
                          if stmt.orelse else body_exits)
            exits.extend(else_exits)
            if stmt.finalbody:
                return self._sequence(stmt.finalbody, exits)
            return exits
        if isinstance(stmt, (ast.Return, ast.Raise)):
            cfg._edge(node, EXIT)
            return []
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._loops[-1][1].append(node)
            return []
        if isinstance(stmt, ast.Continue):
            if self._loops:
                cfg._edge(node, self._loops[-1][0])
            return []
        return [node]


def _contains_stmt(body: List[ast.stmt], target: ast.stmt) -> bool:
    for stmt in body:
        for sub in ast.walk(stmt):
            if sub is target:
                return True
    return False


def build_cfg(func: ast.AST) -> CFG:
    """CFG over ``func``'s body (a FunctionDef/AsyncFunctionDef)."""
    return _Builder().build(list(func.body))  # type: ignore[attr-defined]


# -- generic forward worklist ------------------------------------------------


def forward_analysis(
    cfg: CFG,
    init: Dict,
    transfer: Callable[[int, ast.stmt, Dict], Dict],
    join: Callable[[Dict, Dict], Dict],
    max_iterations: int = 10000,
) -> Dict[int, Dict]:
    """Run a forward dataflow to fixpoint; returns the IN state per node.

    ``transfer(node, stmt, state)`` must return a *new* state dict;
    ``join`` merges two states.  The client's lattice must be finite
    (or ``join`` monotone and bounded) for termination; the iteration
    cap is a belt-and-braces guard against a non-monotone client.
    """
    in_states: Dict[int, Dict] = {}
    order = sorted(cfg.stmt_of)
    worklist: List[int] = []
    for node in order:
        if ENTRY in _preds_of(cfg, node):
            in_states[node] = dict(init)
            worklist.append(node)
    iterations = 0
    preds_map = {node: _preds_of(cfg, node) for node in order}
    while worklist and iterations < max_iterations:
        iterations += 1
        node = worklist.pop(0)
        state = in_states.get(node)
        if state is None:
            continue
        out = transfer(node, cfg.stmt_of[node], dict(state))
        for succ in cfg.succ.get(node, ()):
            if succ == EXIT:
                continue
            merged = (dict(out) if succ not in in_states
                      else join(in_states[succ], out))
            if succ not in in_states or merged != in_states[succ]:
                in_states[succ] = merged
                if succ not in worklist:
                    worklist.append(succ)
    # Unreached nodes (dead code after return) get the init state so
    # clients can still inspect them without special-casing.
    for node in order:
        in_states.setdefault(node, dict(init))
    return in_states


def _preds_of(cfg: CFG, node: int) -> List[int]:
    return [src for src, dsts in cfg.succ.items() if node in dsts]


# -- statement-event helpers -------------------------------------------------


class _ScopeAwareVisitor(ast.NodeVisitor):
    """Walks an expression/statement without descending into nested
    function or lambda scopes (their bodies execute later, under a
    different frame, so loads there say nothing about *this* frame's
    staleness)."""

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


class _LoadCollector(_ScopeAwareVisitor):
    def __init__(self) -> None:
        self.loads: List[ast.Name] = []

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.loads.append(node)


class _YieldCollector(_ScopeAwareVisitor):
    def __init__(self) -> None:
        self.yields: List[ast.AST] = []

    def visit_Yield(self, node: ast.Yield) -> None:
        self.yields.append(node)
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self.yields.append(node)
        self.generic_visit(node)


def name_loads(node: ast.AST) -> List[ast.Name]:
    """Name loads in ``node``, current scope only (no nested defs)."""
    collector = _LoadCollector()
    collector.visit(node)
    return collector.loads


def yields_in(node: ast.AST) -> List[ast.AST]:
    """Yield/YieldFrom expressions in ``node``, current scope only."""
    collector = _YieldCollector()
    collector.visit(node)
    return collector.yields


def is_generator(func: ast.AST) -> bool:
    """True when the function body contains a yield in its own scope."""
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    for stmt in func.body:
        if yields_in(stmt):
            return True
    return False
