"""dprlint — static protocol-invariant & determinism analysis.

The static counterpart of :mod:`repro.core.audit`: where the auditor
checks that the §4.3 invariants hold *at runtime*, dprlint checks at
review time that the code cannot break the preconditions those
invariants (and the sim kernel's exact-reproducibility promise) rest
on.  Run it with::

    python -m repro.analysis src            # lint the tree, exit 1 on findings
    python -m repro.analysis --list-rules   # rule catalog

See ``docs/ANALYSIS.md`` for the rule catalog and suppression syntax.
"""

from repro.analysis.cli import main
from repro.analysis.framework import (
    Finding,
    all_rules,
    load_baseline,
    run_lint,
    write_baseline,
)

__all__ = [
    "Finding",
    "all_rules",
    "load_baseline",
    "main",
    "run_lint",
    "write_baseline",
]
