"""Observability rules (DPR-O01).

The tracing layer is only safe to thread through the deterministic
simulation because it is an *observer*: ``repro.obs`` sits below every
protocol package, and the hook calls sprinkled through kernel, network,
worker, finder-service and client code record values without feeding
anything back.  Both halves of that contract are code shape, so both
are checked here:

- **layering** — modules inside ``repro.obs`` import nothing from the
  rest of ``repro`` (otherwise the kernel could not hold a tracer
  without an import cycle, and a tracer could reach protocol state);
- **hook purity** — a tracer hook call site in protocol code must
  discard the hook's result (hooks return ``None``; using the value
  means simulation behaviour depends on tracing being enabled) and must
  not smuggle side effects through its arguments (no walrus bindings,
  no calls to mutating container methods): with those shapes banned,
  deleting every hook call provably cannot change protocol state.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from repro.analysis.framework import (
    Finding,
    ModuleInfo,
    ModuleRule,
    PROTOCOL_SCOPE,
    Project,
    dotted_name,
    register,
)

#: The observability package; its modules must be repro-import-free.
OBS_PACKAGE = "repro.obs"

#: Receiver names that identify a tracer hook call site.  The rule is
#: nominal on purpose: protocol code passes tracers around under these
#: names (``env.tracer``, ``self.tracer``, ``plan._tracer``, a local
#: ``tracer``), and a nominal match keeps the check decidable.
TRACER_NAMES = ("tracer", "_tracer")

#: The Tracer hook surface (methods that record; all return None).
HOOK_METHODS = frozenset({
    "counter", "gauge", "queue_depth", "event", "span",
    "begin_span", "end_span", "cancel_span", "end_spans",
})

#: Container-mutator method names; a hook argument calling one of these
#: would mutate protocol state as a side effect of tracing.  (Shared
#: shape with DPR-P02's accessor analysis.)
MUTATOR_METHODS = frozenset({
    "append", "add", "clear", "discard", "extend", "insert",
    "pop", "popitem", "remove", "update", "setdefault",
})


def _is_tracer_hook_call(node: ast.Call) -> bool:
    """``<...>.tracer.<hook>(...)`` or ``tracer.<hook>(...)``."""
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in HOOK_METHODS:
        return False
    chain = dotted_name(func.value)
    if chain is None:
        return False
    return chain.split(".")[-1] in TRACER_NAMES


def _argument_side_effects(call: ast.Call) -> Iterator[ast.AST]:
    """Nodes inside the call's arguments that would mutate state."""
    arguments = list(call.args) + [kw.value for kw in call.keywords]
    for argument in arguments:
        for node in ast.walk(argument):
            if isinstance(node, ast.NamedExpr):
                yield node
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATOR_METHODS):
                yield node


@register
class ObsHookPurityRule(ModuleRule):
    """DPR-O01: observability must not feed back into the protocol.

    Inside ``repro.obs``: no imports from other ``repro`` packages.
    Everywhere in protocol scope: tracer hook calls must be bare
    expression statements with side-effect-free arguments.
    """

    id = "DPR-O01"
    title = "observability hook feeds back into protocol state"
    scope = PROTOCOL_SCOPE

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterator[Finding]:
        if (module.module == OBS_PACKAGE
                or module.module.startswith(OBS_PACKAGE + ".")):
            yield from self._check_obs_imports(module)
            return
        yield from self._check_hook_sites(module)

    def _check_obs_imports(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                origins = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    continue  # relative: stays inside the package
                origins = [node.module or ""]
            else:
                continue
            for origin in origins:
                if (origin.split(".")[0] == "repro"
                        and origin != OBS_PACKAGE
                        and not origin.startswith(OBS_PACKAGE + ".")):
                    yield module.finding(
                        self, node,
                        f"repro.obs must not import {origin!r}: the "
                        f"observability layer sits below every protocol "
                        f"package (import it the other way around)")

    def _check_hook_sites(self, module: ModuleInfo) -> Iterator[Finding]:
        parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(module.tree):
            for child in ast.iter_child_nodes(parent):
                parents[id(child)] = parent
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not _is_tracer_hook_call(node):
                continue
            parent = parents.get(id(node))
            if not isinstance(parent, ast.Expr):
                yield module.finding(
                    self, node,
                    "tracer hook result must be discarded (hooks return "
                    "None; consuming the value makes protocol behaviour "
                    "depend on whether tracing is enabled)")
            for offender in _argument_side_effects(node):
                what = ("walrus binding"
                        if isinstance(offender, ast.NamedExpr)
                        else f"call to mutator "
                             f"'.{offender.func.attr}()'")  # type: ignore[attr-defined]
                yield module.finding(
                    self, offender,
                    f"tracer hook argument has a side effect ({what}): "
                    f"hook calls must be deletable without changing "
                    f"protocol state")
