"""Determinism rules (DPR-D01..D04).

The discrete-event kernel promises that a whole-cluster experiment is
*exactly reproducible* for a fixed seed: time only advances between
events and every tie is broken by insertion order.  That promise dies
the moment protocol code reads the host's clock, draws from process
entropy, or iterates a ``set`` whose order depends on
``PYTHONHASHSEED``.  These rules ban those constructs on protocol
paths; simulated time comes from ``env.now`` and randomness from an
explicit seeded :class:`random.Random` (see :mod:`repro.sim.rand`).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.analysis.framework import (
    PROTOCOL_SCOPE,
    WALL_CLOCK_ALLOWLIST,
    Finding,
    ModuleInfo,
    ModuleRule,
    Project,
    ProjectRule,
    module_in_scope,
    register,
    resolve_name,
)

#: Calendar/wall time: never acceptable on any repro path — benches
#: measure elapsed time with a monotonic timer instead.
WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.ctime",
    "time.localtime",
    "time.gmtime",
    "time.strftime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Monotonic timers: fine for measuring host elapsed time in the bench
#: harness (the allowlist), but inside the protocol packages all timing
#: must come from the simulation clock.
MONOTONIC_CALLS = {
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
}

#: Process entropy: never acceptable — breaks bit-identical replays.
ENTROPY_CALLS = {
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbits",
    "secrets.choice",
    "random.SystemRandom",
}

#: The one sanctioned use of the :mod:`random` module: constructing an
#: explicitly seeded generator (what :func:`repro.sim.rand.make_rng`
#: does).  Everything else on ``random.`` is the shared global
#: generator, whose state any import can perturb.
SEEDED_CONSTRUCTORS = {"random.Random"}


@register
class NoWallClockRule(ModuleRule):
    """DPR-D01: no wall clock, process entropy, or global ``random``."""

    id = "DPR-D01"
    title = "wall-clock, entropy, or global-random call on a repro path"
    scope = ("repro",)

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterator[Finding]:
        imports = module.import_map()
        protocol = module_in_scope(module.module, PROTOCOL_SCOPE)
        timers_ok = module_in_scope(module.module, WALL_CLOCK_ALLOWLIST)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_name(node.func, imports)
            if resolved is None:
                continue
            if resolved in WALL_CLOCK_CALLS:
                yield module.finding(
                    self, node,
                    f"wall-clock call {resolved}() — simulated code uses "
                    f"env.now; benches use time.perf_counter()",
                )
            elif resolved in MONOTONIC_CALLS and protocol and not timers_ok:
                yield module.finding(
                    self, node,
                    f"host timer {resolved}() inside a protocol package — "
                    f"use the simulation clock (env.now)",
                )
            elif resolved in ENTROPY_CALLS:
                yield module.finding(
                    self, node,
                    f"entropy source {resolved}() — use a seeded "
                    f"random.Random (repro.sim.rand.make_rng)",
                )
            elif (resolved.startswith("random.")
                  and resolved not in SEEDED_CONSTRUCTORS):
                yield module.finding(
                    self, node,
                    f"global random module call {resolved}() — pass an "
                    f"explicit seeded random.Random instead",
                )


# -- DPR-D02: unsorted set iteration -----------------------------------------

_SET_TYPE_NAMES = {
    "set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet",
}

#: Consumers whose result cannot depend on iteration order; a generator
#: fed straight into one of these is safe.
_ORDER_INSENSITIVE_CALLS = {
    "any", "all", "sum", "min", "max", "set", "frozenset", "sorted", "len",
}


def _annotation_is_set(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in _SET_TYPE_NAMES:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in _SET_TYPE_NAMES:
            return True
    return False


def _value_is_set_literal(node: Optional[ast.AST]) -> bool:
    if isinstance(node, ast.SetComp) or isinstance(node, ast.Set):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"set", "frozenset"})


class _SetTypeRegistry:
    """Which names are statically known to hold a set/frozenset.

    Attribute names (``descriptor.deps``, ``self._pending_deps``) are
    collected project-wide — a frozenset-typed dataclass field is
    iterated far from its definition.  Plain variable and parameter
    names are only trusted within the module that annotated them.
    """

    def __init__(self) -> None:
        self.attrs: Set[str] = set()
        self.local_vars: Dict[str, Set[str]] = {}

    def collect(self, module: ModuleInfo) -> None:
        local: Set[str] = self.local_vars.setdefault(module.module, set())
        # Class-body annotations (dataclass fields) declare *attributes*
        # even though their AST targets are bare Names.
        class_body_fields: Set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                for statement in node.body:
                    if (isinstance(statement, ast.AnnAssign)
                            and isinstance(statement.target, ast.Name)):
                        class_body_fields.add(id(statement))
                        if _annotation_is_set(statement.annotation):
                            self.attrs.add(statement.target.id)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AnnAssign):
                if id(node) in class_body_fields:
                    continue
                if not _annotation_is_set(node.annotation):
                    continue
                target = node.target
                if isinstance(target, ast.Name):
                    local.add(target.id)
                elif isinstance(target, ast.Attribute):
                    self.attrs.add(target.attr)
            elif isinstance(node, ast.Assign):
                if not _value_is_set_literal(node.value):
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        local.add(target.id)
                    elif isinstance(target, ast.Attribute):
                        self.attrs.add(target.attr)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in (args.posonlyargs + args.args + args.kwonlyargs):
                    if _annotation_is_set(arg.annotation):
                        local.add(arg.arg)

    def classifies(self, module: ModuleInfo, expr: ast.AST) -> Optional[str]:
        """A description of why ``expr`` is set-typed, or None."""
        if isinstance(expr, ast.Name):
            if expr.id in self.local_vars.get(module.module, ()):
                return f"variable {expr.id!r}"
        elif isinstance(expr, ast.Attribute):
            if expr.attr in self.attrs:
                return f"attribute {expr.attr!r}"
        elif isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            if expr.func.id in {"set", "frozenset"}:
                return f"{expr.func.id}(...) result"
        return None


@register
class NoUnsortedSetIterationRule(ProjectRule):
    """DPR-D02: protocol code must not iterate sets in hash order."""

    id = "DPR-D02"
    title = "iteration over a set/frozenset on a protocol path"
    scope = PROTOCOL_SCOPE

    def check_project(self, project: Project) -> Iterator[Finding]:
        registry = _SetTypeRegistry()
        for module in project.in_scope(self.scope):
            registry.collect(module)
        for module in project.in_scope(self.scope):
            yield from self._check_module(module, registry)

    def _check_module(self, module: ModuleInfo,
                      registry: _SetTypeRegistry) -> Iterator[Finding]:
        exempt_comps: Set[int] = set()
        for node in ast.walk(module.tree):
            # Generators consumed whole by an order-insensitive callable
            # (any/all/min/max/...) or building another set are safe.
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in _ORDER_INSENSITIVE_CALLS:
                    for arg in node.args:
                        if isinstance(arg, (ast.GeneratorExp, ast.ListComp,
                                            ast.SetComp)):
                            exempt_comps.add(id(arg))
            if isinstance(node, ast.SetComp):
                exempt_comps.add(id(node))
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For):
                yield from self._check_iter(module, registry, node.iter)
            elif isinstance(node, (ast.GeneratorExp, ast.ListComp,
                                   ast.SetComp, ast.DictComp)):
                if id(node) in exempt_comps:
                    continue
                for generator in node.generators:
                    yield from self._check_iter(module, registry,
                                                generator.iter)

    def _check_iter(self, module: ModuleInfo, registry: _SetTypeRegistry,
                    iterable: ast.AST) -> Iterator[Finding]:
        reason = registry.classifies(module, iterable)
        if reason is None:
            return
        yield module.finding(
            self, iterable,
            f"iterating set-typed {reason} in hash order — wrap it in "
            f"sorted(...) so runs are PYTHONHASHSEED-independent",
        )


# -- DPR-D03: real-world I/O in simulated processes --------------------------

_BANNED_IO_CALLS = {
    "time.sleep": "blocks the host thread; yield env.timeout(...) instead",
    "open": "touches the host filesystem; use repro.sim.storage devices",
    "io.open": "touches the host filesystem; use repro.sim.storage devices",
    "os.open": "touches the host filesystem; use repro.sim.storage devices",
    "os.fdopen": "touches the host filesystem; use repro.sim.storage devices",
    "input": "reads the host terminal inside simulated code",
}

_BANNED_IO_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("socket.", "real network I/O; use repro.sim.network"),
    ("subprocess.", "spawns host processes from simulated code"),
    ("threading.", "host threads break single-threaded determinism"),
    ("multiprocessing.", "host processes break determinism"),
    ("asyncio.", "a second event loop conflicts with the sim kernel"),
    ("urllib.", "real network I/O; use repro.sim.network"),
    ("http.", "real network I/O; use repro.sim.network"),
)


@register
class NoRealWorldIORule(ModuleRule):
    """DPR-D03: no sleeps, sockets, threads or file I/O in sim code."""

    id = "DPR-D03"
    title = "real-world I/O or blocking call inside simulated code"
    scope = PROTOCOL_SCOPE

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterator[Finding]:
        imports = module.import_map()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_name(node.func, imports)
            if resolved is None:
                continue
            if resolved in _BANNED_IO_CALLS:
                yield module.finding(
                    self, node,
                    f"{resolved}() — {_BANNED_IO_CALLS[resolved]}",
                )
                continue
            for prefix, why in _BANNED_IO_PREFIXES:
                if resolved.startswith(prefix):
                    yield module.finding(self, node,
                                         f"{resolved}() — {why}")
                    break


# -- DPR-D04: builtin hash() on protocol paths --------------------------------


@register
class NoBuiltinHashRule(ModuleRule):
    """DPR-D04: no builtin ``hash()`` in protocol packages.

    ``hash()`` over ``str``/``bytes`` is salted by PYTHONHASHSEED, so
    anything derived from it — partition placement, routing, bucket
    choice — differs between interpreter runs and breaks byte-identical
    replays.  Protocol code must use a stable digest instead (e.g.
    ``zlib.crc32`` over canonical bytes, as
    :class:`repro.cluster.ownership.HashPartitioner` does).
    """

    id = "DPR-D04"
    title = "builtin hash() on a protocol path"
    scope = PROTOCOL_SCOPE

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterator[Finding]:
        imports = module.import_map()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if resolve_name(node.func, imports) == "hash":
                yield module.finding(
                    self, node,
                    "builtin hash() is PYTHONHASHSEED-salted for str/bytes "
                    "— use a stable digest (zlib.crc32 over canonical "
                    "bytes) so placement is identical across runs",
                )
