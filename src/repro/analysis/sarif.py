"""SARIF 2.1.0 output for dprlint findings.

GitHub code scanning ingests SARIF and turns each result into an inline
PR annotation, so the CI job uploads ``dprlint.sarif`` as an artifact.
The emitter maps dprlint's model onto SARIF directly: rules become
``tool.driver.rules`` entries (severity -> ``defaultConfiguration.
level``), findings become ``results`` with one physical location,
DPR-A01's snapshot/yield lines become ``relatedLocations``, and
DPR-A02's call chain rides in ``properties.trace``.

The emitter is deliberately dependency-free and deterministic: the
document is built from already-sorted findings and serialized with
sorted keys, so two runs over the same tree are byte-identical.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.framework import Finding, Rule, all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: dprlint severities -> SARIF levels.  Anything unknown degrades to
#: "note" rather than failing the upload.
_LEVELS = {"error": "error", "warning": "warning"}


def _rule_descriptor(rule: Rule) -> Dict[str, object]:
    doc = (rule.__class__.__doc__ or rule.title).strip()
    short = doc.splitlines()[0].strip()
    return {
        "id": rule.id,
        "name": rule.__class__.__name__,
        "shortDescription": {"text": short},
        "fullDescription": {"text": doc},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "note"),
        },
    }


def _location(path: str, line: int, message: str = "") -> Dict[str, object]:
    location: Dict[str, object] = {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
            "region": {"startLine": max(line, 1)},
        },
    }
    if message:
        location["message"] = {"text": message}
    return location


def _result(finding: Finding, levels: Dict[str, str]) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "level": levels.get(finding.rule, "note"),
        "message": {"text": finding.message},
        "locations": [_location(finding.path, finding.line)],
    }
    if finding.col:
        region = result["locations"][0]["physicalLocation"]["region"]
        region["startColumn"] = finding.col + 1  # SARIF columns are 1-based
    if finding.related:
        result["relatedLocations"] = [
            _location(path, line, label)
            for path, line, label in finding.related
        ]
    properties: Dict[str, object] = {}
    if finding.trace:
        properties["trace"] = list(finding.trace)
    if finding.snippet:
        properties["snippet"] = finding.snippet
    if properties:
        result["properties"] = properties
    return result


def sarif_document(findings: Sequence[Finding]) -> Dict[str, object]:
    """The findings as a SARIF 2.1.0 document (a plain dict)."""
    rules = all_rules()
    levels = {rule.id: _LEVELS.get(rule.severity, "note")
              for rule in rules}
    descriptors: List[Dict[str, object]] = [
        _rule_descriptor(rule) for rule in rules
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "dprlint",
                        "informationUri":
                            "docs/ANALYSIS.md",
                        "rules": descriptors,
                    },
                },
                "results": [_result(f, levels) for f in findings],
            },
        ],
    }


def render_sarif(findings: Sequence[Finding]) -> str:
    """The findings serialized as deterministic SARIF JSON."""
    return json.dumps(sarif_document(findings), indent=2, sort_keys=True)
