"""Concurrency rules (DPR-A01, DPR-A02).

Every ``yield`` in a simulated process is a cooperative preemption
point: between suspending and resuming, any other process — a crash, a
migration, a nested recovery — may mutate the shared cluster state the
process was looking at.  PR 5 fixed a family of elasticity bugs that
were all the same mistake: *read shared protocol state, yield, keep
trusting the pre-yield value*.  DPR-A01 detects that shape statically.

DPR-A02 closes the other gap the per-file determinism rules leave
open: a nondeterminism source (wall clock, entropy, real I/O, builtin
``hash()``, unsorted-set iteration) wrapped in a helper function that
lives *outside* the protocol packages is invisible to DPR-D01..D04 at
the protocol call site.  A02 walks the project call graph and reports
protocol-scope calls whose transitive callees reach such a source.

Both rules carry interprocedural context on their findings: A01 cites
the snapshot line and the preemption point (``related``), A02 the call
chain down to the source (``trace``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, FunctionInfo
from repro.analysis.dataflow import (
    CFG,
    EXIT,
    build_cfg,
    forward_analysis,
    is_generator,
    name_loads,
    yields_in,
)
from repro.analysis.framework import (
    PROTOCOL_SCOPE,
    WALL_CLOCK_ALLOWLIST,
    Finding,
    ModuleInfo,
    ModuleRule,
    Project,
    ProjectRule,
    module_in_scope,
    register,
    resolve_name,
)
from repro.analysis.rules_determinism import (
    ENTROPY_CALLS,
    MONOTONIC_CALLS,
    SEEDED_CONSTRUCTORS,
    WALL_CLOCK_CALLS,
    _BANNED_IO_CALLS,
    _BANNED_IO_PREFIXES,
    _ORDER_INSENSITIVE_CALLS,
    _SetTypeRegistry,
)

#: Substrings marking an attribute or callee as *guarded protocol
#: state*: ownership rows, leases, cuts, world-lines, version counters,
#: liveness flags and recovery plans.  A local assigned from an
#: expression reading one of these is a snapshot DPR-A01 tracks across
#: yields.  Matching is substring-based on purpose — ``owner_of``,
#: ``_lease_metadata`` and ``world_line`` should all hit without an
#: exhaustive list.
GUARD_TOKENS = ("owner", "lease", "cut", "world_line", "version",
                "crashed", "running", "rebalancing", "recovery", "seal")

#: Builtins whose calls are pure: reading them after a stale guard is
#: not "acting on" the stale guard (while-guard sub-check).
_PURE_BUILTINS = frozenset({
    "range", "len", "min", "max", "sorted", "enumerate", "list", "dict",
    "set", "frozenset", "tuple", "zip", "getattr", "isinstance", "abs",
    "sum", "int", "float", "str", "bool", "repr", "format", "id", "type",
})


def _has_guard_token(name: str) -> bool:
    """Token matching on snake_case segments, by prefix.

    ``owner_of`` and ``ownership`` match ``owner``; ``seal_version``
    and ``is_sealed`` match ``seal``; but ``execute`` does NOT match
    ``cut`` — tokens only anchor at segment starts.  Tokens containing
    an underscore (``world_line``) match as plain substrings.
    """
    lowered = name.lower()
    segments = lowered.split("_")
    for token in GUARD_TOKENS:
        if "_" in token:
            if token in lowered:
                return True
        elif any(segment.startswith(token) for segment in segments):
            return True
    return False


def _chain_parts(node: ast.AST) -> List[str]:
    """Attribute/Name chain parts, root first (``a.b.c`` -> [a, b, c])."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return parts


def _guard_read_desc(expr: ast.AST) -> Optional[str]:
    """Why ``expr`` is a read of guarded protocol state, or None.

    Two shapes count: an attribute chain whose parts carry a guard
    token (``self.metadata.ownership``, ``worker.engine.version``), and
    a call whose function chain does (``self.metadata.owner_of(p)``,
    ``self.controller.plan_recovery(...)``).  Only the *top level* of an
    assigned value is considered by the tracker — ``x = a.version + 1``
    is derived data, not a snapshot (a documented false-negative shape).
    """
    if isinstance(expr, ast.Attribute):
        parts = _chain_parts(expr)
        if parts and any(_has_guard_token(part) for part in parts):
            return ".".join(parts)
        return None
    if isinstance(expr, ast.Call):
        parts = _chain_parts(expr.func)
        if parts and any(_has_guard_token(part) for part in parts):
            return ".".join(parts) + "()"
    return None


def _contains_fresh_guard_read(expr: ast.AST) -> bool:
    """Does ``expr`` *itself* read guarded state (so a comparison
    against it is a re-validation, not a stale use)?"""
    for sub in ast.walk(expr):
        if _guard_read_desc(sub) is not None:
            return True
    return False


def _self_attr_chain(expr: ast.AST) -> Optional[str]:
    """``X`` when ``expr`` is a ``self.X``-rooted attribute chain."""
    if not isinstance(expr, ast.Attribute):
        return None
    chain = expr
    while isinstance(chain.value, ast.Attribute):
        chain = chain.value
    if isinstance(chain.value, ast.Name) and chain.value.id == "self":
        return chain.attr
    return None


def _header_exprs(stmt: ast.stmt) -> List[ast.AST]:
    """The expressions evaluated *at* this CFG node.

    Compound statements (If/While/For/With/Try) own only their
    test/iter/context expressions — their bodies are separate CFG nodes
    and must not be double-counted at the header.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return []
    return [stmt]


def _header_loads(stmt: ast.stmt) -> List[ast.Name]:
    loads: List[ast.Name] = []
    for expr in _header_exprs(stmt):
        loads.extend(name_loads(expr))
    return loads


def _header_yields(stmt: ast.stmt) -> List[ast.AST]:
    found: List[ast.AST] = []
    for expr in _header_exprs(stmt):
        found.extend(yields_in(expr))
    return found


# -- DPR-A01: yield-point atomicity -------------------------------------------


class _Snapshot:
    """Dataflow fact for one tracked local.

    ``kind`` is "guard" (snapshot of ownership/lease/cut/version state:
    stale *uses* are findings) or "rmw" (snapshot of a plain ``self.X``
    read: only a stale write-back to the same attribute is a finding).
    """

    __slots__ = ("desc", "snap_line", "stale", "yield_line", "origin",
                 "kind")

    def __init__(self, desc: str, snap_line: int, stale: bool = False,
                 yield_line: int = 0, origin: Optional[str] = None,
                 kind: str = "guard"):
        self.desc = desc
        self.snap_line = snap_line
        self.stale = stale
        self.yield_line = yield_line
        self.origin = origin
        self.kind = kind

    def staled(self, yield_line: int) -> "_Snapshot":
        if self.stale:
            return self
        return _Snapshot(self.desc, self.snap_line, True, yield_line,
                         self.origin, self.kind)

    def refreshed(self, line: int) -> "_Snapshot":
        return _Snapshot(self.desc, line, False, 0, self.origin, self.kind)

    def merge(self, other: "_Snapshot") -> "_Snapshot":
        stale = self.stale or other.stale
        yield_line = (min(l for l in (self.yield_line, other.yield_line)
                          if l) if stale else 0)
        return _Snapshot(self.desc, min(self.snap_line, other.snap_line),
                         stale, yield_line, self.origin, self.kind)

    def _key(self) -> Tuple:
        return (self.desc, self.snap_line, self.stale, self.yield_line,
                self.origin, self.kind)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Snapshot) and self._key() == other._key()

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)


@register
class YieldAtomicityRule(ModuleRule):
    """DPR-A01: no stale guard snapshots across a yield point.

    Inside generator-based sim processes, flags (a) locals assigned
    from ownership/lease/cut/version/liveness reads and used after a
    later ``yield`` without re-validation, (b) read-modify-write on a
    ``self.`` attribute spanning a yield through a local, and (c)
    ``while self.<guard>:`` loops whose body acts after a bare yield
    without re-testing the guard.

    The sanctioned re-validation patterns pass and mark the local fresh
    again: comparing the snapshot against a fresh guard read
    (``while worker.engine.version == boundary``) and passing it to a
    guard predicate inside a branch test
    (``if not self.engine.is_sealed(version)``).
    """

    id = "DPR-A01"
    title = "guard state snapshot trusted across a yield point"
    scope = PROTOCOL_SCOPE
    severity = "error"

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not is_generator(node):
                continue
            yield from self._check_generator(module, node)
            yield from self._check_while_guards(module, node)

    # -- sub-checks (a)+(b): snapshot dataflow ----------------------------

    def _check_generator(self, module: ModuleInfo,
                         func: ast.AST) -> Iterator[Finding]:
        cfg = build_cfg(func)
        findings: Dict[Tuple[str, int, str], Finding] = {}

        def transfer(node_id: int, stmt: ast.stmt,
                     state: Dict[str, _Snapshot]) -> Dict[str, _Snapshot]:
            exempt, refreshed = self._revalidations(stmt, state)
            for load in _header_loads(stmt):
                snap = state.get(load.id)
                if snap is None or not snap.stale or snap.kind != "guard":
                    continue
                if id(load) in exempt:
                    continue
                key = (load.id, load.lineno, "use")
                if key not in findings:
                    findings[key] = self._stale_use_finding(
                        module, load, snap)
            self._check_rmw(module, stmt, state, findings)
            for var in refreshed:
                if var in state:
                    state[var] = state[var].refreshed(stmt.lineno)
            ys = _header_yields(stmt)
            if ys:
                yield_line = min(getattr(y, "lineno", stmt.lineno)
                                 for y in ys)
                state = {var: snap.staled(yield_line)
                         for var, snap in state.items()}
            for name, snap in self._stores(stmt).items():
                if snap is None:
                    state.pop(name, None)
                else:
                    state[name] = snap
            return state

        def join(left: Dict[str, _Snapshot],
                 right: Dict[str, _Snapshot]) -> Dict[str, _Snapshot]:
            merged = dict(left)
            for var, snap in right.items():
                if var in merged and merged[var].desc == snap.desc:
                    merged[var] = merged[var].merge(snap)
                else:
                    merged[var] = snap
            return merged

        forward_analysis(cfg, {}, transfer, join)
        for key in sorted(findings):
            yield findings[key]

    def _stale_use_finding(self, module: ModuleInfo, load: ast.Name,
                           snap: _Snapshot) -> Finding:
        base = module.finding(
            self, load,
            f"local {load.id!r} snapshots {snap.desc} at line "
            f"{snap.snap_line} but is trusted after the yield at line "
            f"{snap.yield_line} — another process may have changed it; "
            f"re-read or re-validate it after the preemption point",
        )
        related = (
            (module.path, snap.snap_line, f"{load.id} snapshotted here"),
            (module.path, snap.yield_line, "preemption point (yield)"),
        )
        return Finding(rule=base.rule, path=base.path, line=base.line,
                       col=base.col, message=base.message,
                       snippet=base.snippet, related=related)

    def _check_rmw(self, module: ModuleInfo, stmt: ast.stmt,
                   state: Dict[str, _Snapshot],
                   findings: Dict[Tuple[str, int, str], Finding]) -> None:
        """Sub-check (b): ``self.X`` rebuilt from a pre-yield snapshot
        of ``self.X`` — the classic lost update."""
        if not isinstance(stmt, ast.Assign):
            return
        for target in stmt.targets:
            attr = _self_attr_chain(target)
            if attr is None:
                continue
            for load in name_loads(stmt.value):
                snap = state.get(load.id)
                if (snap is None or not snap.stale
                        or snap.origin != attr):
                    continue
                key = (load.id, stmt.lineno, "rmw")
                if key in findings:
                    continue
                base = module.finding(
                    self, stmt,
                    f"read-modify-write on self.{attr} spans the yield "
                    f"at line {snap.yield_line}: {load.id!r} captured it "
                    f"at line {snap.snap_line}, so concurrent updates "
                    f"are lost — re-read self.{attr} after the yield",
                )
                related = (
                    (module.path, snap.snap_line,
                     f"self.{attr} read into {load.id}"),
                    (module.path, snap.yield_line,
                     "preemption point (yield)"),
                )
                findings[key] = Finding(
                    rule=base.rule, path=base.path, line=base.line,
                    col=base.col, message=base.message,
                    snippet=base.snippet, related=related)

    def _revalidations(self, stmt: ast.stmt, state: Dict[str, _Snapshot]
                       ) -> Tuple[Set[int], Set[str]]:
        """Exempt Name-load ids and vars refreshed by this statement."""
        exempt: Set[int] = set()
        refreshed: Set[str] = set()
        for header in _header_exprs(stmt):
            for sub in ast.walk(header):
                if not isinstance(sub, ast.Compare):
                    continue
                sides = [sub.left] + list(sub.comparators)
                for index, side in enumerate(sides):
                    others = sides[:index] + sides[index + 1:]
                    if not any(_contains_fresh_guard_read(o)
                               for o in others):
                        continue
                    for load in name_loads(side):
                        if load.id in state:
                            exempt.add(id(load))
                            refreshed.add(load.id)
        if isinstance(stmt, (ast.If, ast.While, ast.Assert)):
            for sub in ast.walk(stmt.test):
                if not isinstance(sub, ast.Call):
                    continue
                parts = _chain_parts(sub.func)
                if not (parts and any(_has_guard_token(p) for p in parts)):
                    continue
                for arg in sub.args:
                    for load in name_loads(arg):
                        if load.id in state:
                            exempt.add(id(load))
                            refreshed.add(load.id)
        return exempt, refreshed

    def _stores(self, stmt: ast.stmt) -> Dict[str, Optional[_Snapshot]]:
        """Name -> new snapshot (tracked) or None (killed)."""
        changes: Dict[str, Optional[_Snapshot]] = {}
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        elif isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            targets = [stmt.target]
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            targets = [item.optional_vars for item in stmt.items
                       if item.optional_vars is not None]
        for target in targets:
            for sub in ast.walk(target):
                # Only Store-context names rebind: a Load name inside a
                # subscript target (``self.q[plan.wl] = ...``) doesn't.
                if (isinstance(sub, ast.Name)
                        and isinstance(sub.ctx, ast.Store)):
                    changes[sub.id] = None
        if (value is not None and len(targets) == 1
                and isinstance(targets[0], ast.Name)):
            name = targets[0].id
            desc = _guard_read_desc(value)
            origin = _self_attr_chain(value)
            if desc is not None:
                changes[name] = _Snapshot(desc, stmt.lineno, origin=origin)
            elif origin is not None:
                # Plain ``v = self.X``: tracked only for the RMW check.
                changes[name] = _Snapshot(f"self.{origin}", stmt.lineno,
                                          origin=origin, kind="rmw")
        return changes

    # -- sub-check (c): while-guard loops ---------------------------------

    def _check_while_guards(self, module: ModuleInfo,
                            func: ast.AST) -> Iterator[Finding]:
        cfg = build_cfg(func)
        node_of_stmt = {id(stmt): node
                        for node, stmt in cfg.stmt_of.items()}
        for loop in ast.walk(func):
            if not isinstance(loop, ast.While):
                continue
            guards = self._guard_attrs(loop.test)
            if not guards:
                continue
            loop_nodes = {
                node for node, stmt in cfg.stmt_of.items()
                if any(stmt is s or _stmt_contains(s, stmt)
                       for s in loop.body)
            }
            header = node_of_stmt.get(id(loop))
            finding = self._walk_loop(module, cfg, header, loop_nodes,
                                      guards)
            if finding is not None:
                yield finding

    def _guard_attrs(self, test: ast.AST) -> Set[str]:
        guards: Set[str] = set()
        for sub in ast.walk(test):
            if (isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                    and _has_guard_token(sub.attr)):
                guards.add(sub.attr)
        return guards

    def _walk_loop(self, module: ModuleInfo, cfg: CFG,
                   header: Optional[int], loop_nodes: Set[int],
                   guards: Set[str]) -> Optional[Finding]:
        guard_list = ", ".join(f"self.{g}" for g in sorted(guards))
        for node in sorted(loop_nodes):
            stmt = cfg.stmt_of[node]
            ys = [y for y in _header_yields(stmt)
                  if isinstance(y, ast.Yield)]
            if not ys:
                continue
            yield_line = min(getattr(y, "lineno", stmt.lineno) for y in ys)
            seen: Set[int] = set()
            frontier = [s for s in cfg.succ.get(node, ()) if s != EXIT]
            while frontier:
                nxt = frontier.pop(0)
                if nxt in seen or nxt == header or nxt not in loop_nodes:
                    continue  # re-tested the guard or left the loop
                seen.add(nxt)
                nstmt = cfg.stmt_of[nxt]
                if self._loads_guard(nstmt, guards):
                    continue  # path re-checks the guard: gated
                if _is_effectful(nstmt):
                    return self._while_guard_finding(
                        module, nstmt, guard_list, yield_line)
                frontier.extend(s for s in cfg.succ.get(nxt, ())
                                if s != EXIT)
        return None

    def _loads_guard(self, stmt: ast.stmt, guards: Set[str]) -> bool:
        for header in _header_exprs(stmt):
            for sub in ast.walk(header):
                if (isinstance(sub, ast.Attribute)
                        and isinstance(sub.ctx, ast.Load)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"
                        and sub.attr in guards):
                    return True
        return False

    def _while_guard_finding(self, module: ModuleInfo, stmt: ast.stmt,
                             guard_list: str, yield_line: int) -> Finding:
        base = module.finding(
            self, stmt,
            f"loop guarded by {guard_list} acts here after the yield at "
            f"line {yield_line} without re-testing the guard — the flag "
            f"may have flipped while this process slept; re-check it "
            f"right after waking",
        )
        related = ((module.path, yield_line, "preemption point (yield)"),)
        return Finding(rule=base.rule, path=base.path, line=base.line,
                       col=base.col, message=base.message,
                       snippet=base.snippet, related=related)


def _stmt_contains(outer: ast.stmt, inner: ast.stmt) -> bool:
    for sub in ast.walk(outer):
        if sub is inner:
            return True
    return False


def _is_effectful(stmt: ast.stmt) -> bool:
    """Does executing this CFG node act on the world or object state?

    Conservative: any call (method calls may mutate) counts, except
    pure builtins and calls inside a yield expression (the preemption
    itself); so does any store to an attribute or subscript.  Only the
    node's header expressions are examined — compound bodies are their
    own CFG nodes.
    """
    for header in _header_exprs(stmt):
        yield_subtrees = {id(sub) for y in yields_in(header)
                          for sub in ast.walk(y)}
        for sub in ast.walk(header):
            if isinstance(sub, ast.Call) and id(sub) not in yield_subtrees:
                if (isinstance(sub.func, ast.Name)
                        and sub.func.id in _PURE_BUILTINS):
                    continue
                return True
            if (isinstance(sub, (ast.Attribute, ast.Subscript))
                    and isinstance(sub.ctx, (ast.Store, ast.Del))):
                return True
    return False


# -- DPR-A02: interprocedural nondeterminism taint ----------------------------


class _TaintSource:
    """One nondeterminism source inside one function."""

    __slots__ = ("desc", "line", "covered")

    def __init__(self, desc: str, line: int, covered: bool):
        self.desc = desc
        self.line = line
        self.covered = covered


class _Taint:
    """How a function reaches a source: directly or via a callee."""

    __slots__ = ("source", "holder", "via")

    def __init__(self, source: _TaintSource, holder: str,
                 via: Optional[str] = None):
        self.source = source
        self.holder = holder
        self.via = via


@register
class InterproceduralTaintRule(ProjectRule):
    """DPR-A02: protocol code must not reach nondeterminism via helpers.

    The per-file rules (D01..D04) flag a source where it appears; they
    cannot see a protocol function calling a utility that calls
    ``time.perf_counter()`` in a package where the per-file rule does
    not apply (or where it was suppressed).  This rule seeds taint at
    every source the per-file rules do *not* already report, propagates
    it up the project call graph, and flags protocol-scope call sites
    whose callees reach one.  Findings carry the call chain in
    ``trace``.
    """

    id = "DPR-A02"
    title = "protocol call chain reaches a nondeterminism source"
    scope = PROTOCOL_SCOPE
    severity = "error"

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = CallGraph(project)
        registry = _SetTypeRegistry()
        for module in project.modules:
            registry.collect(module)
        sources: Dict[str, List[_TaintSource]] = {}
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            found = list(self._direct_sources(info, registry))
            if found:
                sources[qualname] = found
        tainted = self._propagate(graph, sources)
        yield from self._report(graph, sources, tainted)

    # -- seeding -----------------------------------------------------------

    def _direct_sources(self, info: FunctionInfo,
                        registry: _SetTypeRegistry
                        ) -> Iterator[_TaintSource]:
        module = info.module
        imports = module.import_map()
        protocol = module_in_scope(module.module, PROTOCOL_SCOPE)
        timers_ok = module_in_scope(module.module, WALL_CLOCK_ALLOWLIST)
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_name(node.func, imports)
            if resolved is None:
                continue
            line = getattr(node, "lineno", 0)
            if (resolved in WALL_CLOCK_CALLS
                    or resolved in ENTROPY_CALLS
                    or (resolved.startswith("random.")
                        and resolved not in SEEDED_CONSTRUCTORS)):
                # DPR-D01 bans these on every repro path, so the source
                # is covered there unless someone suppressed it.
                covered = not self._suppressed(module, "DPR-D01", line)
                yield _TaintSource(f"{resolved}()", line, covered)
            elif resolved in MONOTONIC_CALLS:
                flagged = protocol and not timers_ok
                covered = flagged and not self._suppressed(
                    module, "DPR-D01", line)
                yield _TaintSource(f"host timer {resolved}()", line,
                                   covered)
            elif (resolved in _BANNED_IO_CALLS
                  or any(resolved.startswith(prefix)
                         for prefix, _ in _BANNED_IO_PREFIXES)):
                covered = protocol and not self._suppressed(
                    module, "DPR-D03", line)
                yield _TaintSource(f"real I/O {resolved}()", line, covered)
            elif resolved == "hash":
                covered = protocol and not self._suppressed(
                    module, "DPR-D04", line)
                yield _TaintSource("builtin hash()", line, covered)
        yield from self._set_iterations(info, registry)

    def _set_iterations(self, info: FunctionInfo,
                        registry: _SetTypeRegistry
                        ) -> Iterator[_TaintSource]:
        module = info.module
        protocol = module_in_scope(module.module, PROTOCOL_SCOPE)
        exempt: Set[int] = set()
        for node in ast.walk(info.node):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_INSENSITIVE_CALLS):
                for arg in node.args:
                    if isinstance(arg, (ast.GeneratorExp, ast.ListComp,
                                        ast.SetComp)):
                        exempt.add(id(arg))
            if isinstance(node, ast.SetComp):
                exempt.add(id(node))
        for node in ast.walk(info.node):
            iters: List[ast.AST] = []
            if isinstance(node, ast.For):
                iters = [node.iter]
            elif isinstance(node, (ast.GeneratorExp, ast.ListComp,
                                   ast.SetComp, ast.DictComp)):
                if id(node) in exempt:
                    continue
                iters = [g.iter for g in node.generators]
            for iterable in iters:
                reason = registry.classifies(module, iterable)
                if reason is None:
                    continue
                line = getattr(iterable, "lineno", 0)
                covered = protocol and not self._suppressed(
                    module, "DPR-D02", line)
                yield _TaintSource(f"unsorted iteration over {reason}",
                                   line, covered)

    def _suppressed(self, module: ModuleInfo, rule_id: str,
                    line: int) -> bool:
        probe = Finding(rule=rule_id, path=module.path, line=line,
                        col=0, message="")
        return module.suppresses(probe)

    # -- propagation -------------------------------------------------------

    def _propagate(self, graph: CallGraph,
                   sources: Dict[str, List[_TaintSource]]
                   ) -> Dict[str, _Taint]:
        tainted: Dict[str, _Taint] = {}
        worklist: List[str] = []
        for qualname in sorted(sources):
            uncovered = [s for s in sources[qualname] if not s.covered]
            if uncovered:
                tainted[qualname] = _Taint(uncovered[0], qualname)
                worklist.append(qualname)
        reverse = graph.reverse_edges()
        while worklist:
            current = worklist.pop(0)
            taint = tainted[current]
            for caller in reverse.get(current, ()):
                if caller in tainted:
                    continue
                tainted[caller] = _Taint(taint.source, taint.holder,
                                         via=current)
                worklist.append(caller)
        return tainted

    # -- reporting ---------------------------------------------------------

    def _report(self, graph: CallGraph,
                sources: Dict[str, List[_TaintSource]],
                tainted: Dict[str, _Taint]) -> Iterator[Finding]:
        seen: Set[Tuple[str, int, str]] = set()
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            if not module_in_scope(info.module.module, PROTOCOL_SCOPE):
                continue
            for site in info.calls:
                taint = tainted.get(site.callee)
                if taint is None:
                    continue
                callee_info = graph.functions[site.callee]
                callee_protocol = module_in_scope(
                    callee_info.module.module, PROTOCOL_SCOPE)
                direct = any(not s.covered
                             for s in sources.get(site.callee, ()))
                # Report only the boundary call into the tainted region:
                # a protocol callee that merely forwards the taint gets
                # its own finding at *its* boundary call site.
                if callee_protocol and not direct:
                    continue
                line = getattr(site.node, "lineno", 0)
                key = (info.module.path, line, site.callee)
                if key in seen:
                    continue
                seen.add(key)
                chain = self._chain(qualname, site.callee, tainted)
                source = taint.source
                holder = graph.functions[taint.holder]
                base = info.module.finding(
                    self, site.node,
                    f"call reaches {source.desc} at "
                    f"{holder.module.path}:{source.line} "
                    f"(chain: {' -> '.join(chain)}) — nondeterminism "
                    f"flows into protocol code through this helper",
                )
                related = ((holder.module.path, source.line,
                            f"source: {source.desc}"),)
                yield Finding(rule=base.rule, path=base.path,
                              line=base.line, col=base.col,
                              message=base.message, snippet=base.snippet,
                              trace=tuple(chain), related=related)

    def _chain(self, caller: str, callee: str,
               tainted: Dict[str, _Taint]) -> List[str]:
        chain = [caller, callee]
        seen = {caller, callee}
        current: Optional[str] = callee
        while current is not None:
            taint = tainted.get(current)
            if taint is None or taint.via is None or taint.via in seen:
                break
            chain.append(taint.via)
            seen.add(taint.via)
            current = taint.via
        return chain
