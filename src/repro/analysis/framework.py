"""The dprlint rule framework.

dprlint is a self-contained static analyzer (stdlib :mod:`ast` only)
that enforces, at review time, the two properties the reproduction's
correctness rests on but Python does not check:

- the **DPR protocol invariants** (monotonicity, cut closure, world-line
  agreement — §4.3), whose runtime counterpart lives in
  :mod:`repro.core.audit`;
- the **exact reproducibility** of the discrete-event kernel
  (:mod:`repro.sim.kernel` promises bit-identical runs for a fixed seed,
  which a single ``time.time()`` or unsorted-``set`` iteration on a
  protocol path silently breaks).

This module provides the machinery: :class:`Finding`, :class:`ModuleInfo`
(one parsed file with its suppression comments), :class:`Project` (the
whole parsed tree plus shared cross-module analyses), the rule base
classes and registry, and the :func:`run_lint` driver.  The rules
themselves live in :mod:`repro.analysis.rules_determinism`,
:mod:`repro.analysis.rules_protocol` and
:mod:`repro.analysis.rules_hygiene`.

Suppressions
------------

Append ``# dprlint: disable=DPR-D01`` (comma-separate several ids, or
``disable=all``) to the offending line.  A ``# dprlint:
disable-file=DPR-H03`` comment anywhere in a file suppresses the rule
for the whole file.  A baseline file (``--baseline``) suppresses a
recorded set of pre-existing findings; see :func:`load_baseline`.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Module prefixes whose code runs inside (or feeds) the deterministic
#: simulation and the DPR protocol: determinism rules apply here.
PROTOCOL_SCOPE: Tuple[str, ...] = (
    "repro.sim",
    "repro.core",
    "repro.cluster",
    "repro.faster",
    "repro.obs",
)

#: Module prefixes that legitimately measure host wall-clock time (the
#: bench harness reports how long figure generation took).  Monotonic
#: timers are allowed here; calendar time and entropy still are not.
WALL_CLOCK_ALLOWLIST: Tuple[str, ...] = ("repro.bench",)

_SUPPRESS_RE = re.compile(
    r"#\s*dprlint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_\-, ]+)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Stripped source line, used for baseline fingerprints (stable
    #: across unrelated edits that shift line numbers).
    snippet: str = ""
    #: Interprocedural call chain (DPR-A02): caller -> ... -> source.
    trace: Tuple[str, ...] = ()
    #: Supporting locations as (path, line, label) — e.g. DPR-A01's
    #: snapshot line and preemption point.  Not part of the fingerprint.
    related: Tuple[Tuple[str, int, str], ...] = ()

    def fingerprint(self) -> str:
        return f"{self.rule}::{self.path}::{self.snippet}"

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.trace:
            data["trace"] = list(self.trace)
        if self.related:
            data["related"] = [
                {"path": path, "line": line, "label": label}
                for path, line, label in self.related
            ]
        return data

    def render(self) -> str:
        head = (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.message}")
        notes = [f"    note: {path}:{line}: {label}"
                 for path, line, label in self.related]
        return "\n".join([head] + notes)


class ModuleInfo:
    """One parsed source file plus its dprlint suppression comments."""

    def __init__(self, path: str, module: str, tree: ast.Module, source: str):
        self.path = path
        self.module = module
        self.tree = tree
        self.lines = source.splitlines()
        self.line_suppressions: Dict[int, Set[str]] = {}
        self.file_suppressions: Set[str] = set()
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = {part.strip() for part in match.group(2).split(",")
                     if part.strip()}
            if match.group(1) == "disable-file":
                self.file_suppressions |= rules
            else:
                self.line_suppressions.setdefault(lineno, set()).update(rules)

    def suppresses(self, finding: Finding) -> bool:
        on_line = self.line_suppressions.get(finding.line, set())
        for spec in (on_line, self.file_suppressions):
            if "all" in spec or finding.rule in spec:
                return True
        return False

    def snippet_at(self, line: int) -> str:
        if 0 < line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        return Finding(rule=rule.id, path=self.path, line=line, col=col,
                       message=message, snippet=self.snippet_at(line))

    # -- import resolution -------------------------------------------------

    def import_map(self) -> Dict[str, str]:
        """Local name -> dotted origin, for resolving call targets.

        ``import time`` maps ``time -> time``; ``from time import
        perf_counter`` maps ``perf_counter -> time.perf_counter``;
        ``import numpy as np`` maps ``np -> numpy``.  Relative imports
        resolve against this module's package.
        """
        mapping: Dict[str, str] = {}
        package_parts = self.module.split(".")[:-1]
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        mapping[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        mapping[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base_parts = package_parts[: len(package_parts)
                                               - (node.level - 1)]
                    base = ".".join(base_parts)
                    origin = f"{base}.{node.module}" if node.module else base
                else:
                    origin = node.module or ""
                for alias in node.names:
                    local = alias.asname or alias.name
                    mapping[local] = (f"{origin}.{alias.name}"
                                      if origin else alias.name)
        return mapping


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_name(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Resolve a Name/Attribute chain through the module's imports.

    ``datetime.now()`` after ``from datetime import datetime`` resolves
    to ``datetime.datetime.now``.
    """
    chain = dotted_name(node)
    if chain is None:
        return None
    head, _, rest = chain.partition(".")
    origin = imports.get(head, head)
    return f"{origin}.{rest}" if rest else origin


class Project:
    """Every parsed module, indexed by dotted name."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules = list(modules)
        self.by_name: Dict[str, ModuleInfo] = {m.module: m for m in modules}
        self.by_path: Dict[str, ModuleInfo] = {m.path: m for m in modules}

    def get(self, module: str) -> Optional[ModuleInfo]:
        return self.by_name.get(module)

    def in_scope(self, prefixes: Tuple[str, ...]) -> Iterator[ModuleInfo]:
        for info in self.modules:
            if module_in_scope(info.module, prefixes):
                yield info


def module_in_scope(module: str, prefixes: Tuple[str, ...]) -> bool:
    if not prefixes:
        return True
    return any(module == p or module.startswith(p + ".") for p in prefixes)


# -- rule base classes and registry ------------------------------------------


class Rule:
    """Base class: an id, a one-line title, and a module scope."""

    id: str = ""
    title: str = ""
    #: Module-name prefixes the rule applies to; empty = everywhere.
    scope: Tuple[str, ...] = ()
    #: Severity tier: "error" (protocol/determinism correctness) or
    #: "warning" (hygiene).  Maps onto the SARIF level of the same name
    #: and is shown by ``--list-rules``; any finding still fails the
    #: run regardless of tier.
    severity: str = "error"

    def applies_to(self, module: str) -> bool:
        return module_in_scope(module, self.scope)


class ModuleRule(Rule):
    """A rule checked one file at a time."""

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule needing a cross-module view (exhaustiveness, layering)."""

    def check_project(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls):
    """Class decorator adding a rule to the global registry."""
    instance = rule_cls()
    if not instance.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if instance.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.id}")
    _REGISTRY[instance.id] = instance
    return rule_cls


def all_rules() -> List[Rule]:
    """The registered rules, importing the rule modules on first use."""
    # Imported here (not at module top) so framework <-> rules stay
    # cycle-free; registration happens as a side effect of the import.
    from repro.analysis import (  # noqa: F401
        rules_concurrency,
        rules_determinism,
        rules_hygiene,
        rules_observability,
        rules_protocol,
    )

    return sorted(_REGISTRY.values(), key=lambda rule: rule.id)


# -- file collection and parsing ---------------------------------------------


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def module_name_for(path: Path) -> str:
    """Dotted module name, found by climbing the ``__init__.py`` chain."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.resolve().parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:
        parts = [path.stem]
    return ".".join(reversed(parts))


def load_project(paths: Sequence[str]) -> Tuple[Project, List[Finding]]:
    """Parse every file under ``paths``; syntax errors become findings."""
    modules: List[ModuleInfo] = []
    errors: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            errors.append(Finding(rule="DPR-E01", path=str(path), line=0,
                                  col=0, message=f"unreadable file: {exc}"))
            continue
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            errors.append(Finding(
                rule="DPR-E01", path=str(path), line=exc.lineno or 0,
                col=exc.offset or 0, message=f"syntax error: {exc.msg}",
            ))
            continue
        modules.append(ModuleInfo(str(path), module_name_for(path),
                                  tree, source))
    return Project(modules), errors


# -- baseline ----------------------------------------------------------------


def load_baseline(path: str) -> Set[str]:
    """A baseline is a JSON list of finding fingerprints to ignore."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, list):
        raise ValueError("baseline must be a JSON list of fingerprints")
    return {str(entry) for entry in data}


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    fingerprints = sorted({f.fingerprint() for f in findings})
    Path(path).write_text(json.dumps(fingerprints, indent=2) + "\n",
                          encoding="utf-8")


# -- driver ------------------------------------------------------------------


def run_lint(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    baseline: Optional[Set[str]] = None,
) -> List[Finding]:
    """Lint ``paths`` and return the surviving findings, sorted."""
    selected = set(select) if select else None
    ignored = set(ignore) if ignore else set()
    rules = [
        rule for rule in all_rules()
        if (selected is None or rule.id in selected)
        and rule.id not in ignored
    ]
    project, findings = load_project(paths)
    for rule in rules:
        if isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(project))
        elif isinstance(rule, ModuleRule):
            for module in project.modules:
                if rule.applies_to(module.module):
                    findings.extend(rule.check_module(module, project))
    kept: List[Finding] = []
    for finding in findings:
        info = project.by_path.get(finding.path)
        if info is not None and info.suppresses(finding):
            continue
        if baseline and finding.fingerprint() in baseline:
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept
