"""Hygiene rules (DPR-H01..H03).

Generic Python footguns that have bitten protocol code before: mutable
default arguments silently share state across calls (deadly for
per-session bookkeeping), overbroad excepts swallow
:class:`~repro.core.audit.InvariantViolation` and kernel errors alike,
and shadowed builtins make later maintenance edits misread.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.framework import (
    Finding,
    ModuleInfo,
    ModuleRule,
    Project,
    register,
)

_MUTABLE_FACTORY_NAMES = {
    "list", "dict", "set", "bytearray",
    "defaultdict", "OrderedDict", "Counter", "deque",
}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call):
        target = node.func
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else None)
        return name in _MUTABLE_FACTORY_NAMES
    return False


@register
class MutableDefaultArgRule(ModuleRule):
    """DPR-H01: no mutable default arguments."""

    id = "DPR-H01"
    title = "mutable default argument"

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield module.finding(
                        self, default,
                        "mutable default argument is shared across calls — "
                        "default to None and create it in the body "
                        "(dataclasses: field(default_factory=...))",
                    )


@register
class OverbroadExceptRule(ModuleRule):
    """DPR-H02: no bare or swallow-everything excepts."""

    id = "DPR-H02"
    title = "bare or overbroad except"

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield module.finding(
                    self, node,
                    "bare except: catches KeyboardInterrupt and kernel "
                    "errors — name the exception types",
                )
                continue
            broad = {
                name.id
                for name in ast.walk(node.type)
                if isinstance(name, ast.Name)
                and name.id in ("Exception", "BaseException")
            }
            if not broad:
                continue
            reraises = any(isinstance(sub, ast.Raise)
                           for sub in ast.walk(node))
            if not reraises:
                yield module.finding(
                    self, node,
                    f"except {'/'.join(sorted(broad))} without re-raise "
                    f"swallows InvariantViolation and simulation errors — "
                    f"narrow the type or re-raise",
                )


#: Builtins whose shadowing has caused real confusion; deliberately a
#: curated subset (shadowing ``license`` or ``copyright`` harms nobody).
_SHADOWABLE_BUILTINS = {
    "all", "any", "bin", "bool", "bytearray", "bytes", "callable", "chr",
    "classmethod", "compile", "complex", "dict", "dir", "divmod",
    "enumerate", "eval", "exec", "filter", "float", "format", "frozenset",
    "getattr", "globals", "hasattr", "hash", "hex", "id", "input", "int",
    "isinstance", "issubclass", "iter", "len", "list", "locals", "map",
    "max", "memoryview", "min", "next", "object", "oct", "open", "ord",
    "pow", "print", "property", "range", "repr", "reversed", "round",
    "set", "setattr", "slice", "sorted", "staticmethod", "str", "sum",
    "super", "tuple", "type", "vars", "zip",
}


@register
class ShadowedBuiltinRule(ModuleRule):
    """DPR-H03: no rebinding of commonly used builtins.

    Class-body bindings (a ``set`` method on a Redis command engine, an
    ``id`` dataclass field) are exempt: they live behind an attribute
    lookup and shadow nothing at call sites.
    """

    id = "DPR-H03"
    title = "shadowed builtin"

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterator[Finding]:
        class_level: Set[int] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for statement in node.body:
                class_level.add(id(statement))
                if isinstance(statement, (ast.Assign, ast.AnnAssign,
                                          ast.AugAssign)):
                    targets = (statement.targets
                               if isinstance(statement, ast.Assign)
                               else [statement.target])
                    for target in targets:
                        for name in ast.walk(target):
                            if isinstance(name, ast.Name):
                                class_level.add(id(name))
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                if (node.name in _SHADOWABLE_BUILTINS
                        and id(node) not in class_level):
                    yield self._shadow(module, node, node.name,
                                       "definition name")
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_args(module, node)
            elif isinstance(node, ast.Lambda):
                yield from self._check_args(module, node)
            elif isinstance(node, ast.Name) and isinstance(node.ctx,
                                                           ast.Store):
                if (node.id in _SHADOWABLE_BUILTINS
                        and id(node) not in class_level):
                    yield self._shadow(module, node, node.id, "assignment")
            elif isinstance(node, ast.ExceptHandler):
                if node.name in _SHADOWABLE_BUILTINS:
                    yield self._shadow(module, node, node.name,
                                       "except binding")
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if bound in _SHADOWABLE_BUILTINS:
                        yield self._shadow(module, node, bound,
                                           "import binding")

    def _check_args(self, module: ModuleInfo,
                    node: ast.AST) -> Iterator[Finding]:
        args = node.args
        every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        if args.vararg:
            every.append(args.vararg)
        if args.kwarg:
            every.append(args.kwarg)
        for arg in every:
            if arg.arg in _SHADOWABLE_BUILTINS:
                yield self._shadow(module, arg, arg.arg, "parameter")

    def _shadow(self, module: ModuleInfo, node: ast.AST, name: str,
                kind: str) -> Finding:
        return module.finding(
            self, node,
            f"{kind} {name!r} shadows the builtin — rename it",
        )
