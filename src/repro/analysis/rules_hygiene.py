"""Hygiene rules (DPR-H01..H04).

Generic Python footguns that have bitten protocol code before: mutable
default arguments silently share state across calls (deadly for
per-session bookkeeping), overbroad excepts swallow
:class:`~repro.core.audit.InvariantViolation` and kernel errors alike,
shadowed builtins make later maintenance edits misread, and docstrings
drift — a module with no docstring gives the next reader nothing, and
one that references a class deleted two refactors ago actively misleads
(DPR-H04 cross-checks every Sphinx-role reference against what is still
defined).
"""

from __future__ import annotations

import ast
import builtins
import re
import sys
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.framework import (
    Finding,
    ModuleInfo,
    ModuleRule,
    Project,
    register,
)

_MUTABLE_FACTORY_NAMES = {
    "list", "dict", "set", "bytearray",
    "defaultdict", "OrderedDict", "Counter", "deque",
}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call):
        target = node.func
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else None)
        return name in _MUTABLE_FACTORY_NAMES
    return False


@register
class MutableDefaultArgRule(ModuleRule):
    """DPR-H01: no mutable default arguments."""

    id = "DPR-H01"
    title = "mutable default argument"
    severity = "warning"

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield module.finding(
                        self, default,
                        "mutable default argument is shared across calls — "
                        "default to None and create it in the body "
                        "(dataclasses: field(default_factory=...))",
                    )


@register
class OverbroadExceptRule(ModuleRule):
    """DPR-H02: no bare or swallow-everything excepts."""

    id = "DPR-H02"
    title = "bare or overbroad except"
    severity = "warning"

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield module.finding(
                    self, node,
                    "bare except: catches KeyboardInterrupt and kernel "
                    "errors — name the exception types",
                )
                continue
            broad = {
                name.id
                for name in ast.walk(node.type)
                if isinstance(name, ast.Name)
                and name.id in ("Exception", "BaseException")
            }
            if not broad:
                continue
            reraises = any(isinstance(sub, ast.Raise)
                           for sub in ast.walk(node))
            if not reraises:
                yield module.finding(
                    self, node,
                    f"except {'/'.join(sorted(broad))} without re-raise "
                    f"swallows InvariantViolation and simulation errors — "
                    f"narrow the type or re-raise",
                )


#: Builtins whose shadowing has caused real confusion; deliberately a
#: curated subset (shadowing ``license`` or ``copyright`` harms nobody).
_SHADOWABLE_BUILTINS = {
    "all", "any", "bin", "bool", "bytearray", "bytes", "callable", "chr",
    "classmethod", "compile", "complex", "dict", "dir", "divmod",
    "enumerate", "eval", "exec", "filter", "float", "format", "frozenset",
    "getattr", "globals", "hasattr", "hash", "hex", "id", "input", "int",
    "isinstance", "issubclass", "iter", "len", "list", "locals", "map",
    "max", "memoryview", "min", "next", "object", "oct", "open", "ord",
    "pow", "print", "property", "range", "repr", "reversed", "round",
    "set", "setattr", "slice", "sorted", "staticmethod", "str", "sum",
    "super", "tuple", "type", "vars", "zip",
}


@register
class ShadowedBuiltinRule(ModuleRule):
    """DPR-H03: no rebinding of commonly used builtins.

    Class-body bindings (a ``set`` method on a Redis command engine, an
    ``id`` dataclass field) are exempt: they live behind an attribute
    lookup and shadow nothing at call sites.
    """

    id = "DPR-H03"
    title = "shadowed builtin"
    severity = "warning"

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterator[Finding]:
        class_level: Set[int] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for statement in node.body:
                class_level.add(id(statement))
                if isinstance(statement, (ast.Assign, ast.AnnAssign,
                                          ast.AugAssign)):
                    targets = (statement.targets
                               if isinstance(statement, ast.Assign)
                               else [statement.target])
                    for target in targets:
                        for name in ast.walk(target):
                            if isinstance(name, ast.Name):
                                class_level.add(id(name))
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                if (node.name in _SHADOWABLE_BUILTINS
                        and id(node) not in class_level):
                    yield self._shadow(module, node, node.name,
                                       "definition name")
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_args(module, node)
            elif isinstance(node, ast.Lambda):
                yield from self._check_args(module, node)
            elif isinstance(node, ast.Name) and isinstance(node.ctx,
                                                           ast.Store):
                if (node.id in _SHADOWABLE_BUILTINS
                        and id(node) not in class_level):
                    yield self._shadow(module, node, node.id, "assignment")
            elif isinstance(node, ast.ExceptHandler):
                if node.name in _SHADOWABLE_BUILTINS:
                    yield self._shadow(module, node, node.name,
                                       "except binding")
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if bound in _SHADOWABLE_BUILTINS:
                        yield self._shadow(module, node, bound,
                                           "import binding")

    def _check_args(self, module: ModuleInfo,
                    node: ast.AST) -> Iterator[Finding]:
        args = node.args
        every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        if args.vararg:
            every.append(args.vararg)
        if args.kwarg:
            every.append(args.kwarg)
        for arg in every:
            if arg.arg in _SHADOWABLE_BUILTINS:
                yield self._shadow(module, arg, arg.arg, "parameter")

    def _shadow(self, module: ModuleInfo, node: ast.AST, name: str,
                kind: str) -> Finding:
        return module.finding(
            self, node,
            f"{kind} {name!r} shadows the builtin — rename it",
        )


#: Sphinx cross-reference roles whose targets name Python objects.
_ROLE_RE = re.compile(
    r":(?:py:)?(?:class|func|meth|mod|attr|obj|data|exc):`([^`<>]+)`")

_BUILTIN_NAMES = frozenset(dir(builtins))

#: Module heads treated as resolvable without an import: docstrings
#: legitimately cite stdlib types (``random.Random``) from modules the
#: code itself never imports.  ``sys.stdlib_module_names`` needs 3.10+,
#: so fall back to the handful actually cited in this repo.
_STDLIB_HEADS = frozenset(
    getattr(sys, "stdlib_module_names", None)
    or ("ast", "collections", "contextlib", "dataclasses", "functools",
        "heapq", "itertools", "json", "math", "os", "pathlib", "random",
        "re", "sys", "time", "typing"))


def _top_level_names(tree: ast.Module) -> Set[str]:
    """Names bound at module top level: defs, classes, assignments,
    and import bindings."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name in ast.walk(target):
                    if isinstance(name, ast.Name):
                        names.add(name.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def _class_member_names(cls: ast.ClassDef) -> Set[str]:
    """Attributes a class visibly defines: methods, class-level assigns,
    ``__slots__`` strings, and ``self.X = ...`` inside its methods."""
    names: Set[str] = set()
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
            for sub in ast.walk(node):
                if (isinstance(sub, ast.Attribute)
                        and isinstance(sub.ctx, ast.Store)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"):
                    names.add(sub.attr)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                    if target.id == "__slots__" and node.value is not None:
                        for constant in ast.walk(node.value):
                            if (isinstance(constant, ast.Constant)
                                    and isinstance(constant.value, str)):
                                names.add(constant.value)
    return names


@register
class DocstringDriftRule(ModuleRule):
    """DPR-H04: modules need docstrings, and docstrings must not
    reference names that no longer exist.

    The second half checks every Sphinx cross-reference role (class,
    meth, func, mod, attr, obj, data, exc) in module, class, and
    function docstrings.  Dotted ``repro`` targets must resolve to a
    project module (plus, where one is named, a top-level definition in
    it); bare names must be importable, defined in the module, or —
    inside a class — one of that class's members.  References into
    classes with base classes are only required to resolve the class
    itself (members may be inherited).
    """

    id = "DPR-H04"
    title = "missing or stale docstring"
    severity = "warning"

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterator[Finding]:
        if not module.tree.body:
            return  # an empty __init__.py documents nothing
        if not ast.get_docstring(module.tree):
            yield module.finding(
                self, module.tree.body[0],
                "module has no docstring — say what the module is for "
                "and where it sits in the design",
            )
        imports = module.import_map()
        top_level = _top_level_names(module.tree)
        classes: Dict[str, ast.ClassDef] = {
            node.name: node for node in module.tree.body
            if isinstance(node, ast.ClassDef)
        }
        for holder, enclosing in self._docstring_holders(module.tree):
            text = ast.get_docstring(holder, clean=False)
            if not text:
                continue
            node = holder.body[0]
            for match in _ROLE_RE.finditer(text):
                target = match.group(1).strip().lstrip("~!").rstrip("()")
                problem = self._check_target(
                    target, module, project, imports, top_level,
                    classes, enclosing)
                if problem is not None:
                    yield module.finding(
                        self, node,
                        f"docstring references `{target}` {problem}",
                    )

    def _docstring_holders(self, tree: ast.Module):
        """Yield (node-with-docstring, enclosing class or None)."""
        yield tree, None
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                yield node, node
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        yield sub, node
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Module-level functions (class methods came above).
                pass
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, None

    def _check_target(self, target: str, module: ModuleInfo,
                      project: Project, imports: Dict[str, str],
                      top_level: Set[str],
                      classes: Dict[str, ast.ClassDef],
                      enclosing: Optional[ast.ClassDef]) -> Optional[str]:
        """None if ``target`` resolves; else a short why-not."""
        if not target or " " in target:
            return None
        parts = target.split(".")
        head = parts[0]
        if target.startswith("repro."):
            return self._check_project_path(parts, project)
        if head in imports:
            origin = imports[head]
            if origin.startswith("repro"):
                return self._check_project_path(
                    origin.split(".") + parts[1:], project)
            return None  # stdlib/third-party: out of scope
        if len(parts) > 1 and head in _STDLIB_HEADS:
            return None  # e.g. ``random.Random`` cited without an import
        if head in top_level:
            if len(parts) > 1 and head in classes:
                return self._check_member(classes[head], parts[1])
            return None
        if enclosing is not None:
            if head in _class_member_names(enclosing):
                return None
            if head == enclosing.name:
                if len(parts) > 1:
                    return self._check_member(enclosing, parts[1])
                return None
        if head in _BUILTIN_NAMES:
            return None
        return ("but no such name is defined or imported here — "
                "update or drop the reference")

    def _check_project_path(self, parts: List[str],
                            project: Project) -> Optional[str]:
        """Resolve a dotted repro path against the parsed project."""
        best: Optional[Tuple[ModuleInfo, List[str]]] = None
        for split in range(len(parts), 0, -1):
            info = project.get(".".join(parts[:split]))
            if info is not None:
                best = (info, parts[split:])
                break
        if best is None:
            dotted = ".".join(parts)
            return (f"but module `{dotted}` is not part of the project — "
                    f"update or drop the reference")
        info, rest = best
        if not rest:
            return None
        names = _top_level_names(info.tree)
        if rest[0] not in names:
            return (f"but `{rest[0]}` is no longer defined in "
                    f"`{info.module}` — update or drop the reference")
        if len(rest) > 1:
            for node in info.tree.body:
                if isinstance(node, ast.ClassDef) and node.name == rest[0]:
                    return self._check_member(node, rest[1])
        return None

    def _check_member(self, cls: ast.ClassDef,
                      member: str) -> Optional[str]:
        if cls.bases or cls.keywords:
            return None  # members may come from a base class
        if member in _class_member_names(cls):
            return None
        return (f"but `{cls.name}` no longer has a member `{member}` — "
                f"update or drop the reference")
