"""The ``dprlint`` command line: ``python -m repro.analysis [paths...]``.

Exit status: 0 clean, 1 findings, 2 usage or input errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from pathlib import Path

from repro.analysis.framework import (
    all_rules,
    load_baseline,
    run_lint,
    write_baseline,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="dprlint: AST-based protocol-invariant and determinism "
                    "linter for the DPR reproduction (see docs/ANALYSIS.md).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", dest="fmt", choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="JSON baseline of known findings to suppress",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="write current findings to FILE as a baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules with severity tiers and exit",
    )
    parser.add_argument(
        "--explain", default=None, metavar="RULE",
        help="print the docs/ANALYSIS.md section for RULE and exit",
    )
    return parser


def _analysis_doc_path() -> Optional[Path]:
    """Locate docs/ANALYSIS.md relative to this file or the cwd."""
    here = Path(__file__).resolve()
    for base in [p for p in here.parents] + [Path.cwd()]:
        candidate = base / "docs" / "ANALYSIS.md"
        if candidate.is_file():
            return candidate
    return None


def _explain(rule_id: str) -> int:
    rules = {rule.id: rule for rule in all_rules()}
    rule = rules.get(rule_id)
    if rule is None:
        print(f"unknown rule id: {rule_id}", file=sys.stderr)
        return 2
    doc = _analysis_doc_path()
    section: Optional[str] = None
    if doc is not None:
        lines = doc.read_text(encoding="utf-8").splitlines()
        collected: List[str] = []
        inside = False
        for line in lines:
            if line.startswith("### "):
                if inside:
                    break
                inside = line[4:].strip().startswith(rule_id)
            if inside:
                collected.append(line)
        if collected:
            section = "\n".join(collected).strip()
    if section is None:
        # Fall back to the rule's own docstring when the docs section
        # is missing (e.g. running from an installed package).
        body = (rule.__class__.__doc__ or rule.title).strip()
        section = f"### {rule.id}: {rule.title}\n\n{body}"
    print(section)
    return 0


def _split_rules(spec: Optional[str]) -> Optional[List[str]]:
    if spec is None:
        return None
    return [part.strip() for part in spec.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            scope = ", ".join(rule.scope) if rule.scope else "everywhere"
            print(f"{rule.id}  [{rule.severity}]  {rule.title}  "
                  f"[scope: {scope}]")
        return 0

    if args.explain:
        return _explain(args.explain)

    known = {rule.id for rule in all_rules()}
    for spec in (_split_rules(args.select) or []) + \
                (_split_rules(args.ignore) or []):
        if spec not in known:
            print(f"unknown rule id: {spec}", file=sys.stderr)
            return 2

    baseline = None
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2

    try:
        findings = run_lint(
            args.paths,
            select=_split_rules(args.select),
            ignore=_split_rules(args.ignore),
            baseline=baseline,
        )
    except OSError as exc:
        print(f"cannot lint {args.paths}: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(f"wrote {len(findings)} fingerprint(s) to "
              f"{args.write_baseline}")
        return 0

    if args.fmt == "json":
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    elif args.fmt == "sarif":
        from repro.analysis.sarif import render_sarif

        print(render_sarif(findings))
    else:
        for finding in findings:
            print(finding.render())
        summary = (f"dprlint: {len(findings)} finding(s)"
                   if findings else "dprlint: clean")
        print(summary)
    return 1 if findings else 0
