"""Protocol-layering rules (DPR-P01..P03).

These are the static counterparts of the runtime checks in
:mod:`repro.core.audit`: they cannot prove the §4.3 invariants hold at
runtime, but they can prove the *code shape* that makes the runtime
argument sound — every wire message has a handler, protocol-private
bookkeeping is only touched through the owning class's accessors, and
StateObject subclasses cannot bypass the version machinery that the
dirty-seal invariant and monotonicity proofs rely on.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.framework import (
    Finding,
    ModuleInfo,
    Project,
    ProjectRule,
    register,
)

#: Where the wire messages live and which module must dispatch them.
MESSAGES_MODULE = "repro.cluster.messages"
HANDLER_MODULE = "repro.cluster.worker"

#: Modules whose private attributes form the DPR bookkeeping surface.
PROTOCOL_STATE_MODULES = (
    "repro.core.state_object",
    "repro.core.precedence",
    "repro.core.finder.base",
)

#: The base class whose version machinery subclasses must not bypass.
STATE_OBJECT_MODULE = "repro.core.state_object"
STATE_OBJECT_CLASS = "StateObject"


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


@register
class MessageExhaustivenessRule(ProjectRule):
    """DPR-P01: every message dataclass is dispatched by the worker.

    Adding a payload to ``cluster/messages.py`` without teaching
    ``cluster/worker.py`` about it means the message is silently dropped
    by the dispatch loop — the classic way a protocol extension rots.
    The check is by name reference: the worker must mention the class
    (an ``isinstance`` dispatch arm, a construction site, or an explicit
    routing comment is not enough — it must appear in code).
    """

    id = "DPR-P01"
    title = "message dataclass without a worker dispatch handler"
    scope = ("repro.cluster",)

    def check_project(self, project: Project) -> Iterator[Finding]:
        messages = project.get(MESSAGES_MODULE)
        handler = project.get(HANDLER_MODULE)
        if messages is None or handler is None:
            return
        referenced: Set[str] = set()
        for node in ast.walk(handler.tree):
            if isinstance(node, ast.Name):
                referenced.add(node.id)
            elif isinstance(node, ast.Attribute):
                referenced.add(node.attr)
        for node in messages.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if not _is_dataclass_decorated(node):
                continue
            if node.name not in referenced:
                yield messages.finding(
                    self, node,
                    f"message dataclass {node.name} is never referenced in "
                    f"{HANDLER_MODULE} — add a dispatch arm (or construction "
                    f"site) so the worker cannot silently drop it",
                )


def _private_attrs_of_class(node: ast.ClassDef) -> Set[str]:
    """Names assigned as ``self._x`` anywhere in the class body."""
    attrs: Set[str] = set()
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Attribute)
                and isinstance(sub.ctx, ast.Store)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
                and sub.attr.startswith("_")
                and not sub.attr.startswith("__")):
            attrs.add(sub.attr)
    return attrs


def _self_or_cls(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id in ("self", "cls")


@register
class PrivateStateAccessRule(ProjectRule):
    """DPR-P02: protocol-private state is touched only by its owner.

    ``_sealed``, ``_descriptors``, ``_persisted_versions`` and friends
    encode the proof obligations of §4.3; external readers must go
    through public accessors (``sealed_descriptors()``,
    ``persisted_versions()``, ...) so refactors of the bookkeeping
    cannot silently break auditors and workers.
    """

    id = "DPR-P02"
    title = "cross-module access to protocol-private state"
    scope = ("repro",)

    def _registry(self, project: Project) -> Dict[str, Set[str]]:
        """Private attr name -> modules allowed to touch it."""
        registry: Dict[str, Set[str]] = {}
        for module_name in PROTOCOL_STATE_MODULES:
            module = project.get(module_name)
            if module is None:
                continue
            for node in module.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                for attr in _private_attrs_of_class(node):
                    registry.setdefault(attr, set()).add(module_name)
        return registry

    def check_project(self, project: Project) -> Iterator[Finding]:
        registry = self._registry(project)
        if not registry:
            return
        for module in project.in_scope(self.scope):
            allowed_here = {attr for attr, owners in registry.items()
                            if module.module in owners}
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Attribute):
                    attr = node.attr
                    if (attr in registry and attr not in allowed_here
                            and not _self_or_cls(node.value)):
                        yield module.finding(
                            self, node,
                            f"access to protocol-private attribute "
                            f".{attr} (owned by "
                            f"{', '.join(sorted(registry[attr]))}) — use a "
                            f"public accessor",
                        )
                elif (isinstance(node, ast.Call)
                      and isinstance(node.func, ast.Name)
                      and node.func.id in ("getattr", "setattr", "hasattr",
                                           "delattr")
                      and len(node.args) >= 2
                      and isinstance(node.args[1], ast.Constant)
                      and isinstance(node.args[1].value, str)):
                    attr = node.args[1].value
                    if attr in registry and attr not in allowed_here:
                        yield module.finding(
                            self, node,
                            f"{node.func.id}(..., {attr!r}) reaches into "
                            f"protocol-private state (owned by "
                            f"{', '.join(sorted(registry[attr]))}) — use a "
                            f"public accessor",
                        )


_MUTATOR_METHODS = {
    "append", "add", "clear", "discard", "extend", "insert", "pop",
    "popitem", "remove", "update", "setdefault",
}


@register
class SubclassStateMutationRule(ProjectRule):
    """DPR-P03: StateObject subclasses route version changes through
    the base ``Commit``/``Restore`` hooks.

    The dirty-seal invariant and the monotonicity proof both live in
    ``seal_version``/``fast_forward``/``restore``; a subclass writing
    ``self._version`` (or editing ``self._sealed`` directly) can violate
    them without any test noticing until a recovery loses data.
    """

    id = "DPR-P03"
    title = "StateObject subclass mutates protocol version state"
    scope = ("repro",)

    def check_project(self, project: Project) -> Iterator[Finding]:
        base_module = project.get(STATE_OBJECT_MODULE)
        if base_module is None:
            return
        base_class: Optional[ast.ClassDef] = None
        for node in base_module.tree.body:
            if (isinstance(node, ast.ClassDef)
                    and node.name == STATE_OBJECT_CLASS):
                base_class = node
                break
        if base_class is None:
            return
        protected = _private_attrs_of_class(base_class)
        subclass_names = self._descendants(project)
        for module in project.in_scope(self.scope):
            for node in ast.walk(module.tree):
                if (isinstance(node, ast.ClassDef)
                        and node.name in subclass_names):
                    yield from self._check_class(module, node, protected)

    def _descendants(self, project: Project) -> Set[str]:
        """Class names transitively inheriting StateObject (by name)."""
        bases_of: Dict[str, List[str]] = {}
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    names = []
                    for base in node.bases:
                        if isinstance(base, ast.Name):
                            names.append(base.id)
                        elif isinstance(base, ast.Attribute):
                            names.append(base.attr)
                    bases_of.setdefault(node.name, []).extend(names)
        descendants: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, bases in bases_of.items():
                if name in descendants or name == STATE_OBJECT_CLASS:
                    continue
                if any(base == STATE_OBJECT_CLASS or base in descendants
                       for base in bases):
                    descendants.add(name)
                    changed = True
        return descendants

    def _check_class(self, module: ModuleInfo, node: ast.ClassDef,
                     protected: Set[str]) -> Iterator[Finding]:
        for sub in ast.walk(node):
            # self._version = ..., del self._sealed[v], self._dirty += ...
            if (isinstance(sub, ast.Attribute)
                    and isinstance(sub.ctx, (ast.Store, ast.Del))
                    and _self_or_cls(sub.value)
                    and sub.attr in protected):
                yield self._finding(module, sub, node.name, sub.attr)
            # self._sealed[v] = ... / del self._persisted_versions[i]
            elif (isinstance(sub, ast.Subscript)
                  and isinstance(sub.ctx, (ast.Store, ast.Del))
                  and isinstance(sub.value, ast.Attribute)
                  and _self_or_cls(sub.value.value)
                  and sub.value.attr in protected):
                yield self._finding(module, sub, node.name, sub.value.attr)
            # self._pending_deps.clear(), self._sealed.pop(...)
            elif (isinstance(sub, ast.Call)
                  and isinstance(sub.func, ast.Attribute)
                  and sub.func.attr in _MUTATOR_METHODS
                  and isinstance(sub.func.value, ast.Attribute)
                  and _self_or_cls(sub.func.value.value)
                  and sub.func.value.attr in protected):
                yield self._finding(module, sub, node.name,
                                    sub.func.value.attr)

    def _finding(self, module: ModuleInfo, node: ast.AST, class_name: str,
                 attr: str) -> Finding:
        return module.finding(
            self, node,
            f"subclass {class_name} mutates StateObject.{attr} directly — "
            f"route version changes through seal_version()/commit()/"
            f"restore()/mark_persisted()",
        )


@register
class DirectInboxDeliveryRule(ProjectRule):
    """DPR-P04: cluster-layer code sends through ``Network.send``.

    Putting a message straight into a peer's ``inbox`` queue bypasses
    the network model entirely — no latency, no crash semantics, and no
    fault injection.  A message delivered that way can never be dropped,
    duplicated, reordered, or partitioned, so chaos tests silently stop
    covering that path.  Only :mod:`repro.sim.network` itself may touch
    inbox queues; everything in ``repro.cluster`` goes through
    ``Network.send``.
    """

    id = "DPR-P04"
    title = "direct inbox delivery bypassing Network.send"
    scope = ("repro.cluster",)

    def check_project(self, project: Project) -> Iterator[Finding]:
        for module in project.in_scope(self.scope):
            for node in ast.walk(module.tree):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "put"):
                    continue
                receiver = node.func.value
                if ((isinstance(receiver, ast.Attribute)
                     and receiver.attr == "inbox")
                        or (isinstance(receiver, ast.Name)
                            and receiver.id == "inbox")):
                    yield module.finding(
                        self, node,
                        "message put directly into an endpoint inbox — "
                        "send through Network.send so latency, crash "
                        "semantics, and fault injection apply",
                    )
