"""Baseline systems for the recoverability-level study (§7.6)."""

from repro.baselines.cassandra import (
    CassandraCluster,
    CassandraConfig,
    CommitLogMode,
    CassandraNode,
)
from repro.baselines.recoverability import (
    RecoverabilityLevel,
    run_recoverability_matrix,
    supported_levels,
)

__all__ = [
    "CassandraCluster",
    "CassandraConfig",
    "CassandraNode",
    "CommitLogMode",
    "RecoverabilityLevel",
    "run_recoverability_matrix",
    "supported_levels",
]
