"""An Apache-Cassandra-like baseline (§7.6, Figure 19a).

The paper uses Cassandra (replication disabled, default YCSB driver) as
a third system supporting two recoverability levels via the commitlog
``sync`` option:

- ``periodic`` — mutations ack before the commitlog fsyncs (eventual
  recoverability);
- ``group``    — mutations wait for the next group fsync window
  (synchronous recoverability), which costs both latency (half a window
  on average) and throughput (commitlog contention).

The model reproduces the memtable/commitlog write path structure: a
per-node thread pool with an LSM-flavoured per-op cost (which includes
the heavyweight driver/coordination overhead that keeps real
Cassandra's YCSB numbers in the hundreds of thousands of ops/s), plus
the commitlog behaviour that separates the two durability levels.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.cluster.client import ClientMachine
from repro.cluster.messages import BatchReply, BatchRequest
from repro.cluster.stats import ClusterStats
from repro.sim.kernel import Environment, Event
from repro.sim.queues import Queue
from repro.sim.network import Network, NetworkConfig
from repro.sim.rand import make_rng, spawn
from repro.workloads.ycsb import WorkloadSpec, YCSB_A


class CommitLogMode(enum.Enum):
    PERIODIC = "periodic"  # eventual recoverability
    GROUP = "group"        # synchronous recoverability


@dataclass
class CassandraConfig:
    n_nodes: int = 8
    threads_per_node: int = 16
    workload: WorkloadSpec = field(default_factory=lambda: YCSB_A)
    commitlog: CommitLogMode = CommitLogMode.PERIODIC
    batch_size: int = 256
    window: Optional[int] = None
    n_client_machines: int = 8
    client_threads: int = 2
    #: Per-op service cost: memtable insert + commitlog append + the
    #: coordination/driver overhead that dominates real deployments.
    op_cost: float = 150e-6
    #: Group-commit fsync window (commitlog_sync_group_window).
    group_window: float = 10e-3
    #: Extra per-op cost under group sync (commitlog contention).
    group_op_penalty: float = 2.0
    seed: int = 42


class CassandraNode:
    """One Cassandra node: a thread pool over a work queue, plus the
    group-commit fsync cycle when the commitlog is in ``group`` mode."""

    def __init__(self, env: Environment, net: Network, address: str,
                 config: CassandraConfig):
        self.env = env
        self.net = net
        self.address = address
        self.config = config
        self.endpoint = net.register(address)
        self.work = Queue(env, name=f"cass-q:{address}")
        #: Batches waiting on the next group fsync: (reply, reply_to).
        self._awaiting_fsync: List = []
        self.ops_served = 0
        env.process(self._dispatch(), name=f"cass-rx:{address}")
        for thread in range(config.threads_per_node):
            env.process(self._thread(), name=f"cass:{address}/{thread}")
        if config.commitlog is CommitLogMode.GROUP:
            env.process(self._fsync_cycle(), name=f"cass-fsync:{address}")

    def _dispatch(self):
        while True:
            message = yield self.endpoint.inbox  # channel wait, no get() Event
            self.work.put(message.payload)

    def _thread(self):
        env = self.env
        config = self.config
        per_op = config.op_cost
        if config.commitlog is CommitLogMode.GROUP:
            per_op *= config.group_op_penalty
        while True:
            request: BatchRequest = yield self.work  # channel wait
            yield request.op_count * per_op
            self.ops_served += request.op_count
            reply = BatchReply(
                batch_id=request.batch_id,
                session_id=request.session_id,
                object_id=self.address,
                status="ok",
                world_line=0,
                version=0,
                op_count=request.op_count,
                served_at=env.now,
            )
            if config.commitlog is CommitLogMode.GROUP:
                # Ack only after the commitlog group fsync.
                self._awaiting_fsync.append((reply, request.reply_to))
            else:
                self.net.send(self.address, request.reply_to, reply,
                              size_ops=request.op_count)

    def _fsync_cycle(self):
        env = self.env
        while True:
            yield self.config.group_window
            pending, self._awaiting_fsync = self._awaiting_fsync, []
            for reply, reply_to in pending:
                self.net.send(self.address, reply_to, reply,
                              size_ops=reply.op_count)


class CassandraCluster:
    """An n-node Cassandra-like cluster fed by the standard clients."""

    def __init__(self, config: Optional[CassandraConfig] = None, **overrides):
        if config is None:
            config = CassandraConfig(**overrides)
        elif overrides:
            config = replace(config, **overrides)
        self.config = config
        self.env = Environment()
        self._rng = make_rng(config.seed)
        self.net = Network(self.env, NetworkConfig(),
                           rng=spawn(self._rng, "net"))
        self.stats = ClusterStats()
        addresses = [f"cassandra-{i}" for i in range(config.n_nodes)]
        self.nodes = [CassandraNode(self.env, self.net, address, config)
                      for address in addresses]
        self.clients = [
            ClientMachine(
                self.env, self.net, f"client-{i}",
                worker_addresses=addresses,
                workload=config.workload,
                stats=self.stats,
                batch_size=config.batch_size,
                window=config.window,
                n_threads=config.client_threads,
                rng=spawn(self._rng, f"client{i}"),
            )
            for i in range(config.n_client_machines)
        ]

    def run(self, duration: float, warmup: float = 0.05) -> ClusterStats:
        self.stats.warmup = warmup
        self.env.run(until=duration)
        return self.stats
