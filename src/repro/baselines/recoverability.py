"""The §7.6 recoverability-level matrix (Figure 19).

Four guarantees, three systems.  Not every system supports every level
(the paper marks those N/A); :func:`supported_levels` encodes exactly
the paper's matrix:

==========  ========================================  ==================
Level       Meaning                                   Supported by
==========  ========================================  ==================
NONE        not recoverable on failure                D-Redis, D-FASTER
EVENTUAL    ack before persistence, background flush  all three
DPR         ack immediately, asynchronous *prefix*    D-Redis, D-FASTER
            guarantees
SYNC        ack only after persistence                Cassandra, D-Redis
==========  ========================================  ==================
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional

from repro.baselines.cassandra import (
    CassandraCluster,
    CassandraConfig,
    CommitLogMode,
)
from repro.cluster.dfaster import DFasterCluster, DFasterConfig
from repro.cluster.dredis import DRedisCluster, DRedisConfig, RedisMode
from repro.workloads.ycsb import WorkloadSpec, YCSB_A


class RecoverabilityLevel(enum.Enum):
    NONE = "none"
    EVENTUAL = "eventual"
    DPR = "dpr"
    SYNC = "sync"


_MATRIX = {
    "cassandra": {RecoverabilityLevel.EVENTUAL, RecoverabilityLevel.SYNC},
    "d-redis": {
        RecoverabilityLevel.NONE,
        RecoverabilityLevel.EVENTUAL,
        RecoverabilityLevel.DPR,
        RecoverabilityLevel.SYNC,
    },
    "d-faster": {
        RecoverabilityLevel.NONE,
        RecoverabilityLevel.EVENTUAL,
        RecoverabilityLevel.DPR,
    },
}


def supported_levels(system: str):
    """The paper's support matrix (unsupported cells print N/A)."""
    return _MATRIX[system]


def _run_cassandra(level: RecoverabilityLevel, duration: float,
                   warmup: float, workload: WorkloadSpec) -> float:
    mode = (CommitLogMode.GROUP if level is RecoverabilityLevel.SYNC
            else CommitLogMode.PERIODIC)
    cluster = CassandraCluster(CassandraConfig(commitlog=mode,
                                               workload=workload))
    stats = cluster.run(duration, warmup)
    return stats.throughput(start=warmup, end=duration,
                            duration=duration - warmup)


def _run_dredis(level: RecoverabilityLevel, duration: float,
                warmup: float, workload: WorkloadSpec) -> float:
    # NONE: plain Redis.  EVENTUAL: AOF without fsync waiting.
    # DPR: the full D-Redis stack.  SYNC: appendfsync=always.
    if level is RecoverabilityLevel.NONE:
        config = DRedisConfig(mode=RedisMode.PLAIN, workload=workload)
    elif level is RecoverabilityLevel.EVENTUAL:
        config = DRedisConfig(mode=RedisMode.PLAIN, aof="everysec",
                              workload=workload)
    elif level is RecoverabilityLevel.DPR:
        config = DRedisConfig(mode=RedisMode.DPR, workload=workload)
    else:
        config = DRedisConfig(mode=RedisMode.PLAIN, aof="always",
                              workload=workload)
    cluster = DRedisCluster(config)
    stats = cluster.run(duration, warmup)
    return stats.throughput(start=warmup, end=duration,
                            duration=duration - warmup)


def _run_dfaster(level: RecoverabilityLevel, duration: float,
                 warmup: float, workload: WorkloadSpec) -> float:
    # NONE: no checkpoints.  EVENTUAL: checkpoints with DPR off
    # (§7.6: "emulate eventual recoverability by turning off DPR").
    # DPR: the full stack.  SYNC: unsupported.
    if level is RecoverabilityLevel.NONE:
        config = DFasterConfig(checkpoints_enabled=False, dpr_enabled=False,
                               workload=workload)
    elif level is RecoverabilityLevel.EVENTUAL:
        config = DFasterConfig(dpr_enabled=False, workload=workload)
    else:
        config = DFasterConfig(workload=workload)
    cluster = DFasterCluster(config)
    stats = cluster.run(duration, warmup)
    return stats.throughput(start=warmup, end=duration,
                            duration=duration - warmup)


_RUNNERS: Dict[str, Callable] = {
    "cassandra": _run_cassandra,
    "d-redis": _run_dredis,
    "d-faster": _run_dfaster,
}


def run_recoverability_matrix(
    duration: float = 0.4,
    warmup: float = 0.1,
    workload: Optional[WorkloadSpec] = None,
    systems=("cassandra", "d-redis", "d-faster"),
    levels=(RecoverabilityLevel.SYNC, RecoverabilityLevel.DPR,
            RecoverabilityLevel.EVENTUAL, RecoverabilityLevel.NONE),
) -> Dict[str, Dict[RecoverabilityLevel, Optional[float]]]:
    """Regenerate Figure 19: throughput per (system, level), None=N/A."""
    workload = workload or YCSB_A
    results: Dict[str, Dict[RecoverabilityLevel, Optional[float]]] = {}
    for system in systems:
        row: Dict[RecoverabilityLevel, Optional[float]] = {}
        for level in levels:
            if level not in supported_levels(system):
                row[level] = None
                continue
            row[level] = _RUNNERS[system](level, duration, warmup, workload)
        results[system] = row
    return results
