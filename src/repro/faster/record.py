"""HybridLog record format.

Each record carries the CPR *version stamp* of the operation that wrote
it, the back-pointer forming the per-bucket hash chain, and the flags
the non-blocking machinery needs: a tombstone bit for deletes and an
invalid bit set by the PURGE phase of rollbacks (§5.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

#: Logical address meaning "end of chain".
NULL_ADDRESS = -1


@dataclass
class Record:
    """One entry on the HybridLog."""

    key: Any
    value: Any
    #: CPR version the writing operation executed in.
    version: int
    #: Previous record in this hash bucket's chain (collision or older
    #: version of the same key).
    previous_address: int = NULL_ADDRESS
    tombstone: bool = False
    #: Set during PURGE for records in a rolled-back version range;
    #: readers skip invalid records when traversing chains.
    invalid: bool = False

    #: Nominal serialized size, used by flush-size accounting.  The
    #: paper's YCSB records are 8-byte keys and values; header overhead
    #: brings a record to roughly this size.
    SERIALIZED_BYTES = 64

    def matches(self, key: Any) -> bool:
        return not self.invalid and self.key == key
