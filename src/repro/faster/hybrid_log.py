"""The HybridLog: a record log spanning main memory and storage (§5.1).

Address space layout (addresses grow upward)::

        0 ............ head ........ read_only ............. tail
        |-- on disk --|-- in-memory immutable --|-- mutable --|

Records in the *mutable* region are updated in place (which compresses
the log between flushes and removes tail contention); records below
``read_only_address`` are immutable and updated via read-copy-update.
A *fold-over checkpoint* shifts ``read_only_address`` to the tail and
flushes the newly immutable span; this is how D-FASTER implements
``Commit()`` as a lightweight metadata-plus-flush operation.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.faster.record import NULL_ADDRESS, Record


class HybridLog:
    """An append-only record log with memory/storage boundaries."""

    def __init__(self, memory_budget_records: Optional[int] = None):
        self._records: List[Record] = []
        #: First address still in main memory; below this, reads go
        #: PENDING (simulated I/O).
        self.head_address = 0
        #: First address of the mutable (in-place-updatable) region.
        self.read_only_address = 0
        #: Everything below this has been durably flushed.
        self.flushed_until_address = 0
        #: Records kept in memory before the head shifts (None = all).
        self._memory_budget = memory_budget_records

    # -- addressing -----------------------------------------------------

    @property
    def tail_address(self) -> int:
        return len(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def get(self, address: int) -> Record:
        if not 0 <= address < self.tail_address:
            raise IndexError(f"address {address} out of range")
        return self._records[address]

    def in_memory(self, address: int) -> bool:
        return address >= self.head_address

    def mutable(self, address: int) -> bool:
        return address >= self.read_only_address

    # -- appends ----------------------------------------------------------

    def append(self, record: Record) -> int:
        """Append at the tail; returns the record's logical address."""
        address = self.tail_address
        self._records.append(record)
        self._maybe_shift_head()
        return address

    def _maybe_shift_head(self) -> None:
        """Page cold immutable records out when over the memory budget.

        Only records already flushed may leave memory (an unflushed
        record paged out would be lost).
        """
        if self._memory_budget is None:
            return
        excess = (self.tail_address - self.head_address) - self._memory_budget
        if excess > 0:
            limit = min(self.read_only_address, self.flushed_until_address)
            self.head_address = min(self.head_address + excess, limit)

    # -- fold-over checkpointing --------------------------------------------

    def mark_read_only(self) -> Tuple[int, int]:
        """Fold over: freeze everything up to the current tail.

        Returns the ``(from, to)`` address span that newly became
        immutable and must be flushed.
        """
        span = (self.read_only_address, self.tail_address)
        self.read_only_address = self.tail_address
        return span

    def flush_complete(self, until_address: int) -> None:
        """Storage acknowledged durability up to ``until_address``."""
        if until_address > self.read_only_address:
            raise ValueError("cannot flush past the read-only boundary")
        if until_address > self.flushed_until_address:
            self.flushed_until_address = until_address
        self._maybe_shift_head()

    def unflushed_bytes(self) -> int:
        count = self.read_only_address - self.flushed_until_address
        return max(0, count) * Record.SERIALIZED_BYTES

    # -- traversal -----------------------------------------------------------

    def walk_chain(self, address: int) -> Iterator[Tuple[int, Record]]:
        """Yield ``(address, record)`` along a hash chain, newest first."""
        while address != NULL_ADDRESS:
            record = self.get(address)
            yield address, record
            address = record.previous_address

    def scan(self, from_address: int = 0,
             to_address: Optional[int] = None) -> Iterator[Tuple[int, Record]]:
        """Scan a log span in address order (used by recovery)."""
        end = self.tail_address if to_address is None else to_address
        for address in range(from_address, end):
            yield address, self._records[address]

    # -- rollback support -------------------------------------------------------

    def invalidate_versions(self, low: int, high: int,
                            from_address: int = 0) -> int:
        """PURGE: mark records with version in ``(low, high]`` invalid.

        Returns the number of records invalidated.  Readers skip
        invalid records while traversing chains, so this runs in the
        background without blocking operations (§5.5, Figure 8).
        """
        invalidated = 0
        for address in range(from_address, self.tail_address):
            record = self._records[address]
            if low < record.version <= high and not record.invalid:
                record.invalid = True
                invalidated += 1
        return invalidated

    def truncate(self, address: int) -> None:
        """Drop all records at or above ``address`` (crash recovery only;
        live rollbacks use :meth:`invalidate_versions` instead)."""
        del self._records[address:]
        self.read_only_address = min(self.read_only_address, address)
        self.flushed_until_address = min(self.flushed_until_address, address)
        self.head_address = min(self.head_address, address)
