"""FasterKV: the single-node key-value store (§5.1).

Brings together the hash index, the HybridLog and the epoch state
machine.  Operations are linearizable per session; records carry CPR
version stamps; checkpoints and rollbacks are non-blocking (threads
keep executing while the state machines run).

Operation semantics:

- ``read`` — walks the key's hash chain; skips invalid records and, in
  THROW/PURGE, records of rolled-back versions (§5.5); goes PENDING if
  the newest visible record lives below the in-memory head address.
- ``upsert`` — in-place when the target record is mutable *and* stamped
  with the executing thread's current version; otherwise appends a new
  record (read-copy-update across version boundaries).
- ``rmw`` — read-modify-write with the same in-place rule.
- ``delete`` — appends a tombstone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.faster.hash_index import HashIndex
from repro.faster.hybrid_log import HybridLog
from repro.faster.record import NULL_ADDRESS, Record
from repro.faster.statemachine import EpochStateMachine, Phase, StateMachineBusy


class OpStatus:
    """Operation completion statuses (mirrors FASTER's Status enum)."""

    OK = "ok"
    NOT_FOUND = "not_found"
    #: The operation needs storage I/O; the session parks it and the
    #: caller resolves it later via ``complete_pending`` (§5.4).
    PENDING = "pending"


@dataclass
class OpOutcome:
    """Result of a FasterKV operation."""

    status: str
    value: Any = None
    #: CPR version the operation executed in (stamps the session op).
    version: int = 0
    #: Address needing I/O when status is PENDING.
    pending_address: int = NULL_ADDRESS


@dataclass
class CheckpointInfo:
    """Durable metadata of one fold-over checkpoint."""

    version: int
    #: Log prefix captured by this checkpoint.
    until_address: int
    #: Flush size (drives the storage-latency model).
    flush_bytes: int


class FasterKV:
    """The store. One instance per D-FASTER worker shard."""

    DEFAULT_THREAD = "t0"

    def __init__(self, bucket_count: int = 1 << 16,
                 memory_budget_records: Optional[int] = None,
                 start_version: int = 1):
        self.index = HashIndex(bucket_count)
        self.log = HybridLog(memory_budget_records)
        self.epoch = EpochStateMachine(start_version=start_version)
        self.epoch.register_thread(self.DEFAULT_THREAD)
        #: version -> CheckpointInfo for every captured checkpoint.
        self.checkpoints: Dict[int, CheckpointInfo] = {}
        self._capture_pending: Optional[int] = None
        #: Invoked with CheckpointInfo when a capture's flush span is
        #: determined; the embedder starts the storage write and calls
        #: :meth:`complete_flush` when durable.
        self.on_capture: Optional[Callable[[CheckpointInfo], None]] = None
        #: Invoked when THROW is established and purge work is known.
        self.on_purge_ready: Optional[Callable[[int, int], None]] = None
        self.epoch.on_established[Phase.IN_PROGRESS].append(self._capture)
        self.epoch.on_established[Phase.PURGE].append(self._purge_ready)
        #: Counters.
        self.in_place_updates = 0
        self.rcu_appends = 0
        self.reads_pending = 0

    # -- versions & phases ------------------------------------------------

    @property
    def current_version(self) -> int:
        return self.epoch.global_state.version

    @property
    def phase(self) -> Phase:
        return self.epoch.global_state.phase

    def register_thread(self, thread_id: str) -> None:
        self.epoch.register_thread(thread_id)

    def fast_forward_version(self, version: int) -> None:
        """Jump the version without a checkpoint (clean fast-forward).

        Only legal in REST; threads adopt the new version on their next
        refresh (here immediately, since the caller is the one driving
        the machine synchronously).
        """
        state = self.epoch.global_state
        if state.phase is not Phase.REST:
            raise StateMachineBusy(
                f"cannot fast-forward during {state.phase}"
            )
        if version > state.version:
            state.version = version
            for thread_id in list(self.epoch._threads):
                self.epoch.refresh(thread_id)

    def refresh(self, thread_id: str = DEFAULT_THREAD):
        return self.epoch.refresh(thread_id)

    def _thread_version(self, thread_id: str) -> int:
        return self.epoch.thread(thread_id).version

    # -- visibility rules -----------------------------------------------------

    def _hidden(self, record: Record) -> bool:
        """Whether rollback filtering hides this record (§5.5).

        During THROW/PURGE, readers ignore all entries in
        ``(safe_version, rolled_back_version]`` even before the
        background invalidation marks them.
        """
        if record.invalid:
            return True
        state = self.epoch.global_state
        if state.phase in (Phase.THROW, Phase.PURGE):
            return state.safe_version < record.version <= state.boundary_version
        return False

    def _find(self, key: Any) -> Tuple[int, Optional[Record]]:
        """Newest visible record for ``key`` (address, record)."""
        for address, record in self.log.walk_chain(self.index.head_address(key)):
            if record.key == key and not self._hidden(record):
                return address, record
        return NULL_ADDRESS, None

    # -- operations ---------------------------------------------------------------

    def read(self, key: Any, thread_id: str = DEFAULT_THREAD) -> OpOutcome:
        version = self._thread_version(thread_id)
        address, record = self._find(key)
        if record is None:
            return OpOutcome(OpStatus.NOT_FOUND, version=version)
        if not self.log.in_memory(address):
            self.reads_pending += 1
            return OpOutcome(OpStatus.PENDING, version=version,
                             pending_address=address)
        if record.tombstone:
            return OpOutcome(OpStatus.NOT_FOUND, version=version)
        return OpOutcome(OpStatus.OK, value=record.value, version=version)

    def resolve_pending_read(self, key: Any, address: int,
                             thread_id: str = DEFAULT_THREAD) -> OpOutcome:
        """Finish a PENDING read once the simulated I/O returned."""
        record = self.log.get(address)
        version = self._thread_version(thread_id)
        if record.tombstone or self._hidden(record) or record.key != key:
            return OpOutcome(OpStatus.NOT_FOUND, version=version)
        return OpOutcome(OpStatus.OK, value=record.value, version=version)

    def upsert(self, key: Any, value: Any,
               thread_id: str = DEFAULT_THREAD) -> OpOutcome:
        version = self._thread_version(thread_id)
        address, record = self._find(key)
        if (
            record is not None
            and self.log.mutable(address)
            and record.version == version
            and not record.tombstone
        ):
            record.value = value
            self.in_place_updates += 1
            return OpOutcome(OpStatus.OK, version=version)
        self._append(key, value, version, tombstone=False)
        if record is not None:
            self.rcu_appends += 1
        return OpOutcome(OpStatus.OK, version=version)

    def rmw(self, key: Any, update: Callable[[Any], Any],
            initial: Any = None,
            thread_id: str = DEFAULT_THREAD) -> OpOutcome:
        """Read-modify-write; ``update`` maps old value to new value."""
        version = self._thread_version(thread_id)
        address, record = self._find(key)
        if record is None or record.tombstone:
            value = update(initial)
            self._append(key, value, version, tombstone=False)
            return OpOutcome(OpStatus.OK, value=value, version=version)
        if not self.log.in_memory(address):
            self.reads_pending += 1
            return OpOutcome(OpStatus.PENDING, version=version,
                             pending_address=address)
        if self.log.mutable(address) and record.version == version:
            record.value = update(record.value)
            self.in_place_updates += 1
            return OpOutcome(OpStatus.OK, value=record.value, version=version)
        value = update(record.value)
        self._append(key, value, version, tombstone=False)
        self.rcu_appends += 1
        return OpOutcome(OpStatus.OK, value=value, version=version)

    def delete(self, key: Any, thread_id: str = DEFAULT_THREAD) -> OpOutcome:
        version = self._thread_version(thread_id)
        _, record = self._find(key)
        if record is None or record.tombstone:
            return OpOutcome(OpStatus.NOT_FOUND, version=version)
        self._append(key, None, version, tombstone=True)
        return OpOutcome(OpStatus.OK, version=version)

    def _append(self, key: Any, value: Any, version: int,
                tombstone: bool) -> int:
        record = Record(key=key, value=value, version=version,
                        tombstone=tombstone)
        address = self.log.append(record)
        record.previous_address = self.index.publish(key, address)
        return address

    # -- checkpointing (Commit) -----------------------------------------------------

    def begin_checkpoint(self, target_version: Optional[int] = None) -> int:
        """Start a non-blocking fold-over checkpoint of version ``v``.

        The capture happens once every thread has entered the new
        version (the fuzzy boundary becomes sharp); ``on_capture`` then
        reports the flush span.  Call :meth:`complete_flush` when the
        storage write is durable.
        """
        captured = self.epoch.begin_checkpoint(target_version)
        self._capture_pending = captured
        return captured

    def _capture(self) -> None:
        if self._capture_pending is None:
            return
        version = self._capture_pending
        self._capture_pending = None
        from_address, until_address = self.log.mark_read_only()
        flush_bytes = max(
            Record.SERIALIZED_BYTES,
            (until_address - from_address) * Record.SERIALIZED_BYTES,
        )
        info = CheckpointInfo(version=version, until_address=until_address,
                              flush_bytes=flush_bytes)
        self.checkpoints[version] = info
        if self.on_capture is not None:
            self.on_capture(info)

    def complete_flush(self) -> None:
        """Storage acknowledged the checkpoint flush; back to REST."""
        self.log.flush_complete(self.log.read_only_address)
        self.epoch.complete_flush()

    def run_checkpoint_synchronously(
        self, target_version: Optional[int] = None
    ) -> CheckpointInfo:
        """Checkpoint with inline refreshes (single-threaded callers)."""
        captured = self.begin_checkpoint(target_version)
        self.drive_to_phase(Phase.WAIT_FLUSH)
        self.complete_flush()
        return self.checkpoints[captured]

    def drive_to_phase(self, phase: Phase, max_refreshes: int = 16) -> None:
        """Refresh all threads until the machine reaches ``phase``."""
        for _ in range(max_refreshes):
            if self.epoch.global_state.phase is phase:
                return
            for thread_id in list(self.epoch._threads):
                self.epoch.refresh(thread_id)
        if self.epoch.global_state.phase is not phase:
            raise RuntimeError(
                f"state machine stuck in {self.epoch.global_state.phase}, "
                f"wanted {phase}"
            )

    # -- rollback (Restore) ------------------------------------------------------------

    def begin_rollback(self, safe_version: int) -> int:
        """Start the non-blocking THROW/PURGE rollback (§5.5, Figure 8).

        Operations keep executing throughout; readers immediately stop
        seeing entries in ``(safe_version, v]``.  When THROW is
        established the machine moves to PURGE and ``on_purge_ready``
        fires with the purge range; call :meth:`complete_purge` when the
        background invalidation is done (or use
        :meth:`run_rollback_synchronously`).
        """
        return self.epoch.begin_rollback(safe_version)

    def _purge_ready(self) -> None:
        state = self.epoch.global_state
        if self.on_purge_ready is not None:
            self.on_purge_ready(state.safe_version, state.boundary_version)

    def purge_invalid(self) -> int:
        """Mark rolled-back entries invalid in the log (PURGE work)."""
        state = self.epoch.global_state
        return self.log.invalidate_versions(state.safe_version,
                                            state.boundary_version)

    def complete_purge(self) -> None:
        self.epoch.complete_purge()

    def run_rollback_synchronously(self, safe_version: int) -> int:
        """Rollback with inline refreshes (single-threaded callers)."""
        self.begin_rollback(safe_version)
        self.drive_to_phase(Phase.PURGE)
        invalidated = self.purge_invalid()
        self.complete_purge()
        # Rolled-back checkpoints are gone.
        for version in [v for v in self.checkpoints if v > safe_version]:
            del self.checkpoints[version]
        return invalidated

    # -- log compaction (garbage collection) ------------------------------------------

    def compact_until(self, safe_version: int) -> int:
        """Garbage-collect log entries superseded below ``safe_version``.

        Per §5.5, D-FASTER only garbage-collects entries covered by the
        DPR guarantee — versions at or below the cut can never roll
        back, so per-key history below them is dead weight.  A record in
        the region below the safe checkpoint survives iff it is (a) the
        newest record of its key with version <= safe_version (still
        needed as the restore-to-cut image and to serve reads), or (b)
        stamped with a newer version (still subject to rollback).

        The log is rebuilt and the index rechained; like real FASTER,
        compaction must not run concurrently with PENDING operations
        (their addresses would dangle).  Returns the number of records
        collected.
        """
        info = self.checkpoints.get(safe_version)
        if info is None:
            raise KeyError(f"no checkpoint at version {safe_version}")
        boundary = min(info.until_address, self.log.flushed_until_address)
        # Newest <= safe record per key, across the whole log.
        last_safe: Dict[Any, int] = {}
        for address, record in self.log.scan():
            if record.version <= safe_version and not record.invalid:
                last_safe[record.key] = address
        keep_flags = []
        dropped = 0
        for address, record in self.log.scan(0, boundary):
            keep = (
                not record.invalid
                and (record.version > safe_version
                     or last_safe.get(record.key) == address)
            )
            keep_flags.append(keep)
            if not keep:
                dropped += 1
        if dropped == 0:
            return 0
        survivors = [
            self.log.get(address)
            for address in range(boundary) if keep_flags[address]
        ]
        suffix = [record for _a, record in self.log.scan(boundary)]
        # Rebuild the log and the index with compacted addresses.
        old_log = self.log
        self.log = HybridLog(old_log._memory_budget)
        self.index.clear()
        for record in survivors + suffix:
            fresh = Record(key=record.key, value=record.value,
                           version=record.version,
                           tombstone=record.tombstone,
                           invalid=record.invalid)
            address = self.log.append(fresh)
            fresh.previous_address = self.index.publish(record.key, address)
        self.log.read_only_address = max(
            0, old_log.read_only_address - dropped)
        self.log.flushed_until_address = max(
            0, old_log.flushed_until_address - dropped)
        self.log.head_address = max(0, old_log.head_address - dropped)
        # Checkpoints below the safe version lose their meaning (they
        # are below the guarantee and can never be restore targets).
        for version in [v for v in self.checkpoints if v < safe_version]:
            del self.checkpoints[version]
        for version, checkpoint in self.checkpoints.items():
            checkpoint.until_address = max(
                0, checkpoint.until_address - dropped)
        return dropped

    # -- introspection ------------------------------------------------------------------

    def size_estimate_bytes(self) -> int:
        return len(self.log) * Record.SERIALIZED_BYTES
