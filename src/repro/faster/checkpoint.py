"""Checkpoint durability metadata and crash recovery.

A fold-over checkpoint of version ``v`` makes the log prefix
``[0, until_address_v)`` durable.  Crash recovery rebuilds a fresh
FasterKV from that prefix, *filtering out records stamped with versions
greater than v*: because the capture boundary is fuzzy (threads enter
the new version at their own pace), new-version records may sit below
the boundary and must not resurrect (§5.5).

Live rollbacks never use this path — they run the non-blocking
THROW/PURGE machine on the running instance; this is the cold-restart
path the cluster manager uses for the *failed* node.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.faster.record import Record
from repro.faster.store import CheckpointInfo, FasterKV


def durable_prefix(kv: FasterKV, version: int) -> int:
    """Log address up to which checkpoint ``version`` is durable."""
    info = kv.checkpoints.get(version)
    if info is None:
        raise KeyError(f"no checkpoint for version {version}")
    return info.until_address


def recover(kv: FasterKV, version: int,
            bucket_count: Optional[int] = None) -> FasterKV:
    """Cold-start a new FasterKV from ``kv``'s checkpoint of ``version``.

    Simulates a restarted process reading the durable log: scans the
    checkpointed prefix in address order, skips records from versions
    newer than the checkpoint, and replays the survivors (so index
    chains are rebuilt consistently).  The recovered instance resumes
    at ``version + 1``.
    """
    until = durable_prefix(kv, version)
    recovered = FasterKV(
        bucket_count=bucket_count or kv.index.bucket_count,
        start_version=version + 1,
    )
    for _address, record in kv.log.scan(0, until):
        if record.version > version or record.invalid:
            continue
        # Replay by direct append (keeps the original version stamps and
        # rebuilds each bucket's chain in address order).
        replayed = Record(key=record.key, value=record.value,
                          version=record.version, tombstone=record.tombstone)
        address = recovered.log.append(replayed)
        replayed.previous_address = recovered.index.publish(record.key, address)
    # The replayed state is durable by construction.
    span_from, span_to = recovered.log.mark_read_only()
    recovered.log.flush_complete(span_to)
    recovered.checkpoints[version] = CheckpointInfo(
        version=version,
        until_address=span_to,
        flush_bytes=(span_to - span_from) * Record.SERIALIZED_BYTES,
    )
    return recovered


def materialize(kv: FasterKV, version: Optional[int] = None) -> Dict:
    """The key->value map as of checkpoint ``version`` (or live state).

    A test/verification helper: walks the durable prefix (or the whole
    log) in address order applying upserts and tombstones, honouring
    version filtering and invalid marks.
    """
    if version is not None:
        until = durable_prefix(kv, version)
        ceiling = version
    else:
        until = kv.log.tail_address
        ceiling = None
    state: Dict = {}
    for _address, record in kv.log.scan(0, until):
        if record.invalid:
            continue
        if ceiling is not None and record.version > ceiling:
            continue
        if kv._hidden(record):
            continue
        if record.tombstone:
            state.pop(record.key, None)
        else:
            state[record.key] = record.value
    return state
