"""FASTER sessions: serial numbers, PENDING ops, strict vs relaxed CPR (§5.4).

A session is a sequential logical thread of execution against one
FasterKV.  Operations get monotonically increasing serial numbers (the
operation *begin time* that CPR's strict prefix guarantee is defined
over).  Operations touching records below the in-memory head go
PENDING; under relaxed CPR the session keeps issuing and resolves them
later as a group via :meth:`FasterSession.complete_pending` — later
operations do not depend on unresolved PENDING ones, and recovered
prefixes may carve them out via an exception list.  Under strict CPR a
PENDING operation must resolve before the next operation may begin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.faster.store import FasterKV, OpOutcome, OpStatus


@dataclass
class PendingOp:
    """An operation parked on simulated storage I/O."""

    serial: int
    kind: str
    key: Any
    address: int
    update: Optional[Callable[[Any], Any]] = None
    initial: Any = None


@dataclass
class CompletedOp:
    """A finished operation with its CPR version stamp."""

    serial: int
    kind: str
    key: Any
    status: str
    value: Any
    version: int


class FasterSession:
    """One client session on a FasterKV instance."""

    def __init__(self, kv: FasterKV, session_id: str,
                 thread_id: Optional[str] = None, strict: bool = False):
        self.kv = kv
        self.session_id = session_id
        self.thread_id = thread_id or FasterKV.DEFAULT_THREAD
        self.kv.register_thread(self.thread_id)
        self.strict = strict
        self._next_serial = 1
        self._pending: Dict[int, PendingOp] = {}
        self._completed: List[CompletedOp] = []

    # -- issuing -----------------------------------------------------------

    def _begin(self) -> int:
        if self.strict and self._pending:
            raise RuntimeError(
                f"session {self.session_id} is strict CPR: resolve pending "
                "operations before issuing new ones (§5.4)"
            )
        serial = self._next_serial
        self._next_serial += 1
        return serial

    def _finish(self, serial: int, kind: str, key: Any,
                outcome: OpOutcome) -> CompletedOp:
        done = CompletedOp(serial=serial, kind=kind, key=key,
                           status=outcome.status, value=outcome.value,
                           version=outcome.version)
        self._completed.append(done)
        return done

    def read(self, key: Any) -> CompletedOp:
        serial = self._begin()
        outcome = self.kv.read(key, thread_id=self.thread_id)
        if outcome.status == OpStatus.PENDING:
            self._pending[serial] = PendingOp(
                serial=serial, kind="read", key=key,
                address=outcome.pending_address,
            )
            return CompletedOp(serial=serial, kind="read", key=key,
                               status=OpStatus.PENDING, value=None,
                               version=outcome.version)
        return self._finish(serial, "read", key, outcome)

    def upsert(self, key: Any, value: Any) -> CompletedOp:
        serial = self._begin()
        outcome = self.kv.upsert(key, value, thread_id=self.thread_id)
        return self._finish(serial, "upsert", key, outcome)

    def rmw(self, key: Any, update: Callable[[Any], Any],
            initial: Any = None) -> CompletedOp:
        serial = self._begin()
        outcome = self.kv.rmw(key, update, initial=initial,
                              thread_id=self.thread_id)
        if outcome.status == OpStatus.PENDING:
            self._pending[serial] = PendingOp(
                serial=serial, kind="rmw", key=key,
                address=outcome.pending_address, update=update,
                initial=initial,
            )
            return CompletedOp(serial=serial, kind="rmw", key=key,
                               status=OpStatus.PENDING, value=None,
                               version=outcome.version)
        return self._finish(serial, "rmw", key, outcome)

    def delete(self, key: Any) -> CompletedOp:
        serial = self._begin()
        outcome = self.kv.delete(key, thread_id=self.thread_id)
        return self._finish(serial, "delete", key, outcome)

    # -- pending resolution (§5.4) ------------------------------------------

    def pending_serials(self) -> List[int]:
        return sorted(self._pending)

    def complete_pending(self) -> List[CompletedOp]:
        """Resolve all PENDING operations (``CompletePending()``).

        In a real deployment this waits for storage I/O; the simulated
        cluster inserts that latency around this call.  Resolution
        re-executes against the (now in-memory) record, honouring
        rollback filtering — a pending op whose record was purged comes
        back NOT_FOUND rather than resurrecting rolled-back state.
        """
        resolved: List[CompletedOp] = []
        for serial in sorted(self._pending):
            pending = self._pending.pop(serial)
            if pending.kind == "read":
                outcome = self.kv.resolve_pending_read(
                    pending.key, pending.address, thread_id=self.thread_id
                )
            else:
                # RMW resumption: the I/O returned the cold record; apply
                # the update against it and append the result at the tail
                # (FASTER copies I/O'd records up before updating).
                read = self.kv.resolve_pending_read(
                    pending.key, pending.address, thread_id=self.thread_id
                )
                base = (read.value if read.status == OpStatus.OK
                        else pending.initial)
                value = pending.update(base)
                outcome = self.kv.upsert(pending.key, value,
                                         thread_id=self.thread_id)
                outcome = OpOutcome(status=outcome.status, value=value,
                                    version=outcome.version)
            resolved.append(self._finish(serial, pending.kind, pending.key,
                                         outcome))
        return resolved

    # -- introspection ---------------------------------------------------------

    def refresh(self) -> None:
        """Participate in the epoch protocol (call periodically)."""
        self.kv.refresh(self.thread_id)

    def completed_ops(self) -> List[CompletedOp]:
        return list(self._completed)

    def ops_at_or_below_version(self, version: int) -> List[int]:
        """Serials whose effects a checkpoint of ``version`` captures."""
        return [op.serial for op in self._completed
                if op.version <= version and op.status == OpStatus.OK]
