"""A FASTER-style single-node key-value store (the D-FASTER substrate).

Reimplements, in Python, the pieces of FASTER the paper builds on
(§5.1, §5.5):

- a hash index with collision chaining (:mod:`repro.faster.hash_index`);
- the **HybridLog** spanning memory and storage, with in-place updates
  in the mutable tail and read-copy-update across version boundaries
  (:mod:`repro.faster.hybrid_log`);
- version-stamped records (:mod:`repro.faster.record`);
- the **CPR** non-blocking checkpoint state machine and the THROW/PURGE
  non-blocking rollback state machine (:mod:`repro.faster.statemachine`);
- sessions with serial numbers and PENDING operations — strict and
  relaxed CPR (:mod:`repro.faster.sessions`);
- fold-over checkpoints and crash recovery
  (:mod:`repro.faster.checkpoint`);
- the :class:`~repro.faster.state_object.FasterStateObject` adapter that
  plugs all of the above into the DPR protocol as a StateObject.
"""

from repro.faster.record import Record
from repro.faster.hash_index import HashIndex
from repro.faster.hybrid_log import HybridLog
from repro.faster.store import FasterKV
from repro.faster.sessions import FasterSession, PendingOp
from repro.faster.statemachine import Phase
from repro.faster.state_object import FasterStateObject

__all__ = [
    "FasterKV",
    "FasterSession",
    "FasterStateObject",
    "HashIndex",
    "HybridLog",
    "PendingOp",
    "Phase",
    "Record",
]
