"""The CPR checkpoint and rollback state machines (§5.5, Figure 8).

FASTER coordinates threads *loosely*: a global state (phase, version)
advances only after every registered thread has refreshed and observed
it.  Threads catch up at their own pace; between refreshes they operate
purely thread-locally.  This file implements that abstraction plus the
two state machines that run on it:

**Checkpoint** (CPR): ``REST -> PREPARE -> IN_PROGRESS -> WAIT_FLUSH ->
REST``.  Threads entering IN_PROGRESS move to the new version and stop
in-place-updating records of the old version (read-copy-update instead),
so when the last thread crosses, the old version's state is immutable
and can be captured fuzzily without blocking anyone.

**Rollback** (D-FASTER's novel non-blocking restore): ``REST -> THROW ->
PURGE -> REST``.  Threads entering THROW move to the post-recovery
version; after all threads cross, no more entries from rolled-back
versions can appear in the log, and PURGE marks the range
``(v_safe, v]`` invalid in the background while readers skip it via the
hash chains.

Only one state machine may run at a time — which is also how D-FASTER
prevents a checkpoint racing a rollback (§5.5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set


class Phase(enum.Enum):
    REST = "rest"
    # Checkpoint phases.
    PREPARE = "prepare"
    IN_PROGRESS = "in_progress"
    WAIT_FLUSH = "wait_flush"
    # Rollback phases.
    THROW = "throw"
    PURGE = "purge"


class StateMachineBusy(RuntimeError):
    """A checkpoint/rollback was requested while another is running."""


@dataclass
class GlobalState:
    """The (phase, version) pair threads synchronize on."""

    phase: Phase = Phase.REST
    version: int = 1
    #: Version being captured (checkpoint) or the ceiling of the purge
    #: range (rollback); meaningful outside REST.
    boundary_version: int = 0
    #: Floor of the purge range during THROW/PURGE.
    safe_version: int = 0


@dataclass
class ThreadContext:
    """A thread's local view of the global state."""

    thread_id: str
    phase: Phase = Phase.REST
    version: int = 1


class EpochStateMachine:
    """Loose thread coordination over a shared (phase, version).

    ``on_enter[phase]`` hooks fire exactly once, when the *last* thread
    observes ``phase`` (i.e. the phase becomes globally established);
    ``advance_from[phase]`` names the next phase, or None if leaving the
    phase needs an external trigger (e.g. flush completion).
    """

    def __init__(self, start_version: int = 1):
        self.global_state = GlobalState(version=start_version)
        self._threads: Dict[str, ThreadContext] = {}
        self._observed: Set[str] = set()
        #: Fired when every thread has observed the current phase.
        self.on_established: Dict[Phase, List[Callable[[], None]]] = {
            phase: [] for phase in Phase
        }
        self._auto_advance: Dict[Phase, Optional[Phase]] = {
            Phase.PREPARE: Phase.IN_PROGRESS,
            Phase.IN_PROGRESS: Phase.WAIT_FLUSH,
            Phase.WAIT_FLUSH: None,  # waits for flush completion
            Phase.THROW: Phase.PURGE,
            Phase.PURGE: None,  # waits for purge completion
            Phase.REST: None,
        }

    # -- thread management -------------------------------------------------

    def register_thread(self, thread_id: str) -> ThreadContext:
        if thread_id in self._threads:
            return self._threads[thread_id]
        context = ThreadContext(
            thread_id=thread_id,
            phase=self.global_state.phase,
            version=self.global_state.version,
        )
        self._threads[thread_id] = context
        self._observed.add(thread_id)  # joins already-observing
        return context

    def deregister_thread(self, thread_id: str) -> None:
        self._threads.pop(thread_id, None)
        self._observed.discard(thread_id)
        self._check_established()

    def thread(self, thread_id: str) -> ThreadContext:
        return self._threads[thread_id]

    @property
    def thread_count(self) -> int:
        return len(self._threads)

    # -- refresh protocol -----------------------------------------------------

    def refresh(self, thread_id: str) -> ThreadContext:
        """Bring a thread up to the global (phase, version).

        Mirrors FASTER's ``Refresh()``: cheap when nothing changed,
        otherwise the thread executes catch-up logic (represented here
        by simply adopting the global view — per-phase side effects
        live in the store, keyed off the returned context).
        """
        context = self._threads[thread_id]
        state = self.global_state
        if context.phase is not state.phase or context.version != state.version:
            context.phase = state.phase
            context.version = state.version
        if thread_id not in self._observed:
            self._observed.add(thread_id)
            self._check_established()
        return context

    def _check_established(self) -> None:
        if len(self._observed) < len(self._threads):
            return
        phase = self.global_state.phase
        hooks = self.on_established[phase]
        for hook in list(hooks):
            hook()
        next_phase = self._auto_advance[phase]
        if next_phase is not None:
            self._move_to(next_phase)

    def _move_to(self, phase: Phase, version: Optional[int] = None) -> None:
        self.global_state.phase = phase
        if version is not None:
            self.global_state.version = version
        if phase is Phase.IN_PROGRESS and self._pending_version is not None:
            # Threads entering IN_PROGRESS adopt the new version and stop
            # in-place-updating old-version records.
            self.global_state.version = self._pending_version
            self._pending_version = None
        self._observed = set()
        if not self._threads:
            return
        self._check_established()

    # -- checkpoint machine --------------------------------------------------

    def begin_checkpoint(self, target_version: Optional[int] = None) -> int:
        """Start a CPR checkpoint of the current version.

        ``target_version`` is the post-checkpoint version (the §3.4
        fast-forward rule passes ``Vmax`` here); defaults to ``v + 1``.
        Returns the version being captured.
        """
        state = self.global_state
        if state.phase is not Phase.REST:
            raise StateMachineBusy(f"cannot checkpoint during {state.phase}")
        captured = state.version
        new_version = target_version if target_version is not None else captured + 1
        if new_version <= captured:
            raise ValueError("target version must exceed the current one")
        state.boundary_version = captured
        self._move_to(Phase.PREPARE)
        # PREPARE established -> IN_PROGRESS bumps the version.
        self._pending_version = new_version
        return captured

    _pending_version: Optional[int] = None

    def complete_flush(self) -> None:
        """The checkpoint flush is durable: WAIT_FLUSH -> REST."""
        if self.global_state.phase is not Phase.WAIT_FLUSH:
            raise StateMachineBusy(
                f"no flush outstanding in phase {self.global_state.phase}"
            )
        self.global_state.boundary_version = 0
        self._move_to(Phase.REST)

    # -- rollback machine ---------------------------------------------------------

    def begin_rollback(self, safe_version: int) -> int:
        """Start a non-blocking rollback to ``safe_version``.

        Returns the pre-failure version ``v``; entries in
        ``(safe_version, v]`` will be purged.  Threads observing THROW
        move to ``v + 1`` immediately and keep serving (§5.5).
        """
        state = self.global_state
        if state.phase is not Phase.REST:
            raise StateMachineBusy(f"cannot rollback during {state.phase}")
        rolled = state.version
        state.safe_version = safe_version
        state.boundary_version = rolled
        self._move_to(Phase.THROW, version=rolled + 1)
        return rolled

    def complete_purge(self) -> None:
        """Invalid-marking finished: PURGE -> REST."""
        if self.global_state.phase is not Phase.PURGE:
            raise StateMachineBusy(
                f"no purge outstanding in phase {self.global_state.phase}"
            )
        self.global_state.safe_version = 0
        self.global_state.boundary_version = 0
        self._move_to(Phase.REST)
