"""FASTER's hash index, with collision chaining through the log.

The index maps a hash bucket to the *logical address* of the newest
record whose key hashes to that bucket.  Records chain backwards via
``previous_address`` — the chain interleaves different keys (hash
collisions) and older versions of the same key, exactly the structure
§5.5 exploits for non-blocking rollback: all non-garbage-collected
versions of a key remain reachable by walking the chain.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Iterator

from repro.faster.record import NULL_ADDRESS


def _stable_hash(key: Any) -> int:
    """A PYTHONHASHSEED-independent key hash (dprlint DPR-D04).

    Bucket placement feeds recovery-relevant structure (chain order,
    truncation points), so it must be identical across interpreter
    runs; the builtin ``hash()`` is salted for ``str``/``bytes``.
    Type prefixes keep ``1``, ``"1"`` and ``b"1"`` in distinct buckets,
    and tuples fold element-wise so composite keys work too.
    """
    if isinstance(key, bytes):
        return zlib.crc32(b"b:" + key)
    if isinstance(key, str):
        return zlib.crc32(b"s:" + key.encode("utf-8"))
    if isinstance(key, int):
        return zlib.crc32(b"i:%d" % key)
    if isinstance(key, tuple):
        digest = zlib.crc32(b"t:")
        for element in key:
            digest = zlib.crc32(b"%d," % _stable_hash(element), digest)
        return digest
    return zlib.crc32(b"r:" + repr(key).encode("utf-8"))


class HashIndex:
    """Bucketed hash table from key-hash to newest-record address."""

    def __init__(self, bucket_count: int = 1 << 16):
        if bucket_count < 1:
            raise ValueError("need at least one bucket")
        self._bucket_count = bucket_count
        self._buckets: Dict[int, int] = {}

    @property
    def bucket_count(self) -> int:
        return self._bucket_count

    def bucket_of(self, key: Any) -> int:
        return _stable_hash(key) % self._bucket_count

    def head_address(self, key: Any) -> int:
        """Address of the newest record in ``key``'s bucket chain."""
        return self._buckets.get(self.bucket_of(key), NULL_ADDRESS)

    def publish(self, key: Any, address: int) -> int:
        """Point the bucket at a freshly appended record.

        Returns the previous head address — the appender stores it as
        the new record's ``previous_address`` (this mirrors FASTER's
        compare-and-swap on the bucket entry).
        """
        bucket = self.bucket_of(key)
        previous = self._buckets.get(bucket, NULL_ADDRESS)
        self._buckets[bucket] = address
        return previous

    def reset_bucket(self, key: Any, address: int) -> None:
        """Rewind a bucket head (used by log-truncating recovery)."""
        bucket = self.bucket_of(key)
        if address == NULL_ADDRESS:
            self._buckets.pop(bucket, None)
        else:
            self._buckets[bucket] = address

    def clear(self) -> None:
        self._buckets.clear()

    def buckets(self) -> Iterator[int]:
        return iter(self._buckets.values())

    def __len__(self) -> int:
        return len(self._buckets)
