"""FasterKV as a DPR StateObject — the heart of D-FASTER (§5).

The adapter keeps the DPR version counter and the store's CPR version
in lock-step:

- ``Commit()`` (a DPR seal) drives the CPR checkpoint state machine, so
  the sealed token's content is exactly a fold-over checkpoint;
- the §3.2/§3.4 fast-forward rule maps onto FASTER's version jump
  (sealing first when the version is dirty);
- ``Restore()`` runs the non-blocking THROW/PURGE rollback — the log is
  *not* truncated; rolled-back entries are skipped via hash chains and
  invalidated in the background, so surviving operations continue
  throughout.

Operations are tuples: ``("read", key)``, ``("upsert", key, value)``,
``("rmw", key, update_fn)``, ``("incr", key, amount)``,
``("delete", key)``.  A read that needs storage I/O returns a
:class:`PendingMarker` — the D-FASTER worker parks it and resolves it
later (relaxed DPR, §5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.core.state_object import StateObject
from repro.faster.store import FasterKV, OpStatus


@dataclass(frozen=True)
class PendingMarker:
    """Returned for operations parked on simulated storage I/O."""

    key: Any
    address: int


class FasterStateObject(StateObject):
    """One D-FASTER shard: a FasterKV behind the StateObject API."""

    def __init__(self, object_id: str, bucket_count: int = 1 << 16,
                 memory_budget_records: Optional[int] = None, **kwargs):
        super().__init__(object_id, **kwargs)
        self.kv = FasterKV(
            bucket_count=bucket_count,
            memory_budget_records=memory_budget_records,
            start_version=self.version,
        )

    # -- operation dispatch ------------------------------------------------

    def apply(self, op: Tuple) -> Any:
        kind = op[0]
        if kind == "read" or kind == "get":
            outcome = self.kv.read(op[1])
        elif kind == "upsert" or kind == "set":
            outcome = self.kv.upsert(op[1], op[2])
        elif kind == "rmw":
            outcome = self.kv.rmw(op[1], op[2])
        elif kind == "incr":
            amount = op[2] if len(op) > 2 else 1
            outcome = self.kv.rmw(op[1], lambda v, a=amount: (v or 0) + a,
                                  initial=0)
        elif kind == "delete":
            outcome = self.kv.delete(op[1])
        else:
            raise ValueError(f"unknown op {kind!r}")
        if outcome.status == OpStatus.PENDING:
            return PendingMarker(key=op[1], address=outcome.pending_address)
        return outcome.value

    def resolve_pending(self, marker: PendingMarker) -> Any:
        """Finish a PENDING read after the simulated I/O delay."""
        outcome = self.kv.resolve_pending_read(marker.key, marker.address)
        return outcome.value

    # -- DPR <-> CPR bridging -------------------------------------------------

    def snapshot(self, version: int) -> None:
        """Seal = a CPR fold-over checkpoint of exactly ``version``."""
        if self.kv.current_version != version:
            raise AssertionError(
                f"{self.object_id}: DPR sealing {version} but CPR machine "
                f"is at {self.kv.current_version}"
            )
        self.kv.run_checkpoint_synchronously()

    def checkpoint_bytes(self, version: int) -> int:
        return self.kv.checkpoints[version].flush_bytes

    def fast_forward(self, version: int) -> None:
        """§3.2/§3.4 fast-forward, keeping the CPR version in step."""
        super().fast_forward(version)  # seals (checkpoints) if dirty
        self.kv.fast_forward_version(self._version)

    def rollback_to(self, version: int) -> None:
        """Non-blocking rollback via THROW/PURGE (no log truncation)."""
        self.kv.run_rollback_synchronously(version)
        # The store resumed at (pre-failure v) + 1, matching the DPR
        # version bump the base class applies right after this call.

    def restore(self, version: int, *, world_line: Optional[int] = None,
                resume_version: int = 0) -> int:
        target = super().restore(version, world_line=world_line,
                                 resume_version=resume_version)
        # A resume hint may have pushed the DPR version past v+1.
        self.kv.fast_forward_version(self._version)
        return target

    # -- garbage collection ----------------------------------------------------------

    def gc_to_guarantee(self, cut_version: int) -> int:
        """Compact the log below the DPR guarantee (§5.5).

        Only entries covered by the published cut are eligible — they
        can never roll back, so superseded per-key history below the
        cut's checkpoint is garbage.  Returns records collected.
        """
        target = self.latest_persisted_at_or_below(cut_version)
        if target == 0 or target not in self.kv.checkpoints:
            return 0
        return self.kv.compact_until(target)

    # -- convenience ---------------------------------------------------------------

    def get(self, key: Any) -> Any:
        """Direct read helper for tests and examples."""
        value = self.apply(("read", key))
        if isinstance(value, PendingMarker):
            return self.resolve_pending(value)
        return value
