"""YCSB workload specifications (§7.1).

The paper runs YCSB-A (50% reads, 50% blind updates) over 250 M 8-byte
keys with uniform or Zipfian(theta=0.99) access, hash-sharded equally
across workers.  A :class:`WorkloadSpec` provides both:

- *sampling* helpers for functional runs that touch real stores
  (``sample_key`` / ``sample_op``), and
- *aggregate* helpers for the large-scale simulation (per-batch write
  counts, per-shard effective keyspace for the RCU re-copy model).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.sim.rand import make_rng
from repro.workloads.zipfian import ZipfianGenerator


class Distribution(enum.Enum):
    UNIFORM = "uniform"
    ZIPFIAN = "zipfian"


#: Memo for the Zipfian effective (perplexity) keyspace, keyed on the
#: exact ``(item_count, theta)`` pair.  The computation walks a 100k-term
#: entropy sum and is a pure function of its arguments, so caching the
#: float reproduces it bit-for-bit; every experiment in a figure sweep
#: shares the same handful of workload specs.
_EFFECTIVE_KEYSPACE_CACHE: dict = {}


def _effective_keyspace(item_count: int, theta: float) -> float:
    key = (item_count, theta)
    value = _EFFECTIVE_KEYSPACE_CACHE.get(key)
    if value is None:
        generator = ZipfianGenerator(item_count, theta=theta,
                                     rng=random.Random(0))
        value = _EFFECTIVE_KEYSPACE_CACHE[key] = generator.effective_keyspace()
    return value


@dataclass(frozen=True)
class WorkloadSpec:
    """An R:BU single-key workload (the paper's notation, §7.1)."""

    name: str
    read_fraction: float
    keyspace: int = 250_000_000
    distribution: Distribution = Distribution.UNIFORM
    theta: float = 0.99

    @property
    def write_fraction(self) -> float:
        return 1.0 - self.read_fraction

    # -- aggregate-model helpers -----------------------------------------

    def shard_keys(self, shard_count: int) -> float:
        """Keys per shard under equal hash sharding."""
        return self.keyspace / max(1, shard_count)

    def effective_shard_keys(self, shard_count: int) -> float:
        """Skew-adjusted per-shard keyspace for the RCU re-copy model.

        Uniform: the full shard.  Zipfian: the per-shard share of the
        distribution's effective (perplexity) keyspace — hash sharding
        spreads the hot head across shards.
        """
        per_shard = self.shard_keys(shard_count)
        if self.distribution is Distribution.UNIFORM:
            return per_shard
        effective = _effective_keyspace(max(2, int(self.keyspace)), self.theta)
        return max(1.0, effective / max(1, shard_count))

    def batch_write_count(self, batch_size: int,
                          rng: random.Random) -> int:
        """Writes in a batch of ``batch_size`` ops (binomial sample).

        Uses the normal approximation above 64 ops — indistinguishable
        at those sizes and O(1) instead of O(batch).
        """
        wf = self.write_fraction
        if wf <= 0.0:
            return 0
        if wf >= 1.0:
            return batch_size
        if batch_size <= 64:
            return sum(1 for _ in range(batch_size) if rng.random() < wf)
        mean = batch_size * wf
        std = (batch_size * wf * (1 - wf)) ** 0.5
        return max(0, min(batch_size, round(rng.gauss(mean, std))))

    # -- sampling helpers (functional runs) -------------------------------------

    def key_sampler(self, rng: Optional[random.Random] = None):
        """A zero-arg callable producing keys per the distribution."""
        rng = make_rng(rng)
        if self.distribution is Distribution.UNIFORM:
            keyspace = self.keyspace
            return lambda: rng.randrange(keyspace)
        generator = ZipfianGenerator(self.keyspace, theta=self.theta,
                                     rng=rng, scramble=True)
        return generator.sample

    def op_sampler(self, rng: Optional[random.Random] = None):
        """A zero-arg callable producing ``(kind, key)`` tuples."""
        rng = make_rng(rng)
        keys = self.key_sampler(rng)
        read_fraction = self.read_fraction

        def sample() -> Tuple[str, int]:
            kind = "read" if rng.random() < read_fraction else "upsert"
            return kind, keys()

        return sample


#: The paper's main workload: YCSB-A, 50:50 read/blind-update.
YCSB_A = WorkloadSpec(name="ycsb-a", read_fraction=0.5)
YCSB_A_ZIPFIAN = WorkloadSpec(name="ycsb-a-zipf", read_fraction=0.5,
                              distribution=Distribution.ZIPFIAN)
#: Read-mostly and read-only variants (§7.2 mentions read-mostly runs).
YCSB_B = WorkloadSpec(name="ycsb-b", read_fraction=0.95)
YCSB_C = WorkloadSpec(name="ycsb-c", read_fraction=1.0)


def ycsb(name: str, *, zipfian: bool = False,
         keyspace: int = 250_000_000) -> WorkloadSpec:
    """Build a YCSB spec by letter (``"a"``, ``"b"``, ``"c"``)."""
    fractions = {"a": 0.5, "b": 0.95, "c": 1.0}
    letter = name.lower()
    if letter.startswith("ycsb-"):
        letter = letter[len("ycsb-"):]
    if letter not in fractions:
        raise ValueError(f"unknown YCSB workload {name!r}")
    return WorkloadSpec(
        name=f"ycsb-{letter}" + ("-zipf" if zipfian else ""),
        read_fraction=fractions[letter],
        keyspace=keyspace,
        distribution=Distribution.ZIPFIAN if zipfian else Distribution.UNIFORM,
    )
