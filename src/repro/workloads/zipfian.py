"""The YCSB Zipfian generator (Gray et al.'s rejection-free method).

Draws keys from a Zipfian distribution over ``[0, n)`` with parameter
``theta`` (YCSB uses 0.99), using the constant-time inverse-CDF
approximation from the original YCSB implementation — no per-sample
loops, so it is usable inside simulation hot paths and examples.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.sim.rand import make_rng


class ZipfianGenerator:
    """Zipfian-distributed integers in ``[0, item_count)``.

    Item 0 is the hottest.  ``scramble=True`` applies YCSB's scrambled
    variant (hash-spread so hot keys are not contiguous), which is what
    hash-sharded clusters see.
    """

    def __init__(self, item_count: int, theta: float = 0.99,
                 rng: Optional[random.Random] = None,
                 scramble: bool = False):
        if item_count < 1:
            raise ValueError("need at least one item")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1) for this generator")
        self.item_count = item_count
        self.theta = theta
        self.scramble = scramble
        self._rng = make_rng(rng)
        self._zetan = self._zeta(item_count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1 - (2.0 / item_count) ** (1 - theta)) / (
            1 - self._zeta2 / self._zetan
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        """The generalized harmonic number H_{n,theta}.

        Exact for small n; for large n uses the integral approximation
        (error < 1% for n > 10^4), keeping construction O(1)-ish.
        """
        if n <= 10000:
            return sum(1.0 / (i ** theta) for i in range(1, n + 1))
        head = sum(1.0 / (i ** theta) for i in range(1, 10001))
        # integral of x^-theta from 10000 to n
        tail = (n ** (1 - theta) - 10000 ** (1 - theta)) / (1 - theta)
        return head + tail

    def sample(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            rank = 0
        elif uz < 1.0 + 0.5 ** self.theta:
            rank = 1
        else:
            rank = int(
                self.item_count * (self._eta * u - self._eta + 1) ** self._alpha
            )
            rank = min(rank, self.item_count - 1)
        if self.scramble:
            # Fibonacci-multiplicative spread (stable across processes,
            # unlike the salted built-in hash).
            rank = (rank * 0x9E3779B97F4A7C15 % (1 << 64)) % self.item_count
        return rank

    def effective_keyspace(self, horizon: int = 100000) -> float:
        """Keys carrying the bulk of probability mass.

        A single-number summary used by the RCU re-copy cost model: the
        number of uniform keys that would produce the same re-copy
        settling behaviour.  Computed as exp(entropy) of the truncated
        distribution (the standard 'perplexity' reduction), clamped to
        the item count.
        """
        n = min(self.item_count, horizon)
        # p_i proportional to 1/i^theta over the head; the tail mass is
        # spread so thinly it behaves uniformly and barely re-copies.
        weights = [1.0 / (i ** self.theta) for i in range(1, n + 1)]
        head_mass = sum(weights) / self._zetan
        entropy = 0.0
        for w in weights:
            p = w / self._zetan
            entropy -= p * math.log(p)
        # Tail contribution: remaining mass spread over remaining keys.
        tail_mass = 1.0 - head_mass
        tail_keys = self.item_count - n
        if tail_mass > 0 and tail_keys > 0:
            p = tail_mass / tail_keys
            entropy -= tail_mass * math.log(p)
        return min(float(self.item_count), math.exp(entropy))
