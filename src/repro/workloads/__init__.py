"""Workload generators: YCSB mixes (uniform and Zipfian skew) plus the
open-loop fleet driver with its admission-control stack."""

from repro.workloads.openloop import (
    DEFAULT_SCENARIO,
    OpenLoopDriver,
    ScenarioError,
    SessionTable,
    TokenBucket,
    attach_open_loop,
    poisson_draw,
    slo_report,
    validate_scenario,
)
from repro.workloads.ycsb import (
    Distribution,
    WorkloadSpec,
    YCSB_A,
    YCSB_A_ZIPFIAN,
    YCSB_B,
    YCSB_C,
    ycsb,
)
from repro.workloads.zipfian import ZipfianGenerator

__all__ = [
    "DEFAULT_SCENARIO",
    "Distribution",
    "OpenLoopDriver",
    "ScenarioError",
    "SessionTable",
    "TokenBucket",
    "WorkloadSpec",
    "attach_open_loop",
    "poisson_draw",
    "slo_report",
    "validate_scenario",
    "YCSB_A",
    "YCSB_A_ZIPFIAN",
    "YCSB_B",
    "YCSB_C",
    "ZipfianGenerator",
    "ycsb",
]
