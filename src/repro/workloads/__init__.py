"""Workload generators: YCSB mixes with uniform and Zipfian skew."""

from repro.workloads.ycsb import (
    Distribution,
    WorkloadSpec,
    YCSB_A,
    YCSB_A_ZIPFIAN,
    YCSB_B,
    YCSB_C,
    ycsb,
)
from repro.workloads.zipfian import ZipfianGenerator

__all__ = [
    "Distribution",
    "WorkloadSpec",
    "YCSB_A",
    "YCSB_A_ZIPFIAN",
    "YCSB_B",
    "YCSB_C",
    "ZipfianGenerator",
    "ycsb",
]
