"""Open-loop fleet traffic with an admission-control stack.

Closed-loop clients (:mod:`repro.cluster.client`) measure *capacity*:
each thread waits for its window before issuing more, so offered load
collapses to whatever the cluster sustains and queueing delay hides
inside the think loop — the coordinated-omission trap.  This module
measures *latency under offered load*: sessions arrive on their own
schedule whether or not the cluster keeps up, which is what an SLO
knee curve needs (docs/OPENLOOP.md).

The pieces, front to back:

- **Arrival process** — a generator samples how many sessions arrive
  each tick from a Poisson process (or a log-normal doubly-stochastic
  one for bursty fleets) and stamps them into the session table.
- **Session table** — per-session state is a handful of bytes in flat
  :mod:`array` columns keyed by integer handles (the array-kernel
  idiom), so a million concurrent sessions cost megabytes, not a
  million objects.
- **Admission stack** — arrivals land in a
  :class:`repro.sim.queues.BoundedQueue` (shed-oldest or reject), pass
  an optional token bucket, and dispatch is capped at ``max_inflight``
  batches per target: queue-based load leveling in front of the
  cluster, observable through the queue's depth gauge, watermark, and
  shed counters (docs/OBSERVABILITY.md).
- **DPR driver** — admitted sessions coalesce into
  :class:`~repro.cluster.messages.BatchRequest`\\ s on real DPR
  sessions (one per target): Vs headers, dependency tokens, commit
  tracking against piggybacked cuts, and world-line rollback handling,
  so commit latency here means the same thing it means for the
  closed-loop clients.

Scenarios are declarative dicts validated up front
(:func:`validate_scenario`): a typo'd key or out-of-range value fails
before the run, not as a silent default forty minutes in.  Everything
is driven by one seeded RNG stream, so a scenario re-runs
byte-identically across processes and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import math
import random
from array import array
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.messages import BatchRequest
from repro.cluster.stats import ClusterStats
from repro.core.cuts import DprCut
from repro.core.versioning import Token
from repro.obs import interpolated_percentile
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.queues import BoundedQueue
from repro.sim.rand import make_rng, spawn


class ScenarioError(ValueError):
    """A scenario dict failed validation; the message names the path."""


#: The reference scenario.  Overrides deep-merge into this, so a
#: scenario dict only states what it changes.
DEFAULT_SCENARIO: Dict[str, Any] = {
    "name": "openloop",
    "arrival": {
        #: "poisson" or "lognormal" (doubly stochastic: each tick's
        #: Poisson intensity is scaled by a unit-mean log-normal draw).
        "process": "poisson",
        #: Offered load, sessions per second.
        "rate": 200_000.0,
        #: Log-normal burstiness (sigma of the intensity multiplier).
        "sigma": 0.6,
        #: Generator wake interval; arrivals within a tick share a
        #: timestamp, so this bounds arrival-time granularity.
        "tick": 1e-3,
    },
    "session": {
        #: Operations one session performs (a single batch's share).
        "ops": 8,
        #: Fraction of those ops that are blind updates.
        "write_fraction": 0.5,
        #: Sessions coalesced into one BatchRequest.
        "coalesce": 64,
        #: Pause after a world-line rollback before re-dispatching.
        "recovery_pause": 20e-3,
        #: Base RETRY backoff and its cap (exponential with jitter).
        "retry_delay": 2e-3,
        "retry_backoff_cap": 0.1,
    },
    "admission": {
        #: Backlog bound of the admission queue, in sessions.
        "queue_capacity": 200_000,
        #: "shed-oldest" or "reject" (see BoundedQueue).
        "policy": "shed-oldest",
        #: Token-bucket throttle in ops/second; 0 disables it.
        "token_rate": 0.0,
        #: Bucket depth in ops; 0 with a rate means one batch's worth.
        "token_burst": 0.0,
        #: Batches in flight per target.
        "max_inflight": 8,
    },
}

_RANGES = {
    ("arrival", "process"): ("poisson", "lognormal"),
    ("admission", "policy"): BoundedQueue.POLICIES,
}
_POSITIVE = {
    ("arrival", "rate"), ("arrival", "tick"), ("session", "ops"),
    ("session", "coalesce"), ("session", "retry_delay"),
    ("session", "retry_backoff_cap"), ("admission", "queue_capacity"),
    ("admission", "max_inflight"),
}
_NON_NEGATIVE = {
    ("arrival", "sigma"), ("session", "write_fraction"),
    ("session", "recovery_pause"), ("admission", "token_rate"),
    ("admission", "token_burst"),
}


def validate_scenario(overrides: Optional[Dict[str, Any]] = None
                      ) -> Dict[str, Any]:
    """Deep-merge ``overrides`` into :data:`DEFAULT_SCENARIO`.

    Unknown keys and out-of-range values raise :class:`ScenarioError`
    naming the offending path, so scenario typos fail before the run
    instead of silently meaning the default.
    """
    merged: Dict[str, Any] = {"name": DEFAULT_SCENARIO["name"]}
    for section, defaults in DEFAULT_SCENARIO.items():
        if section != "name":
            merged[section] = dict(defaults)
    for section, value in (overrides or {}).items():
        if section == "name":
            if not isinstance(value, str) or not value:
                raise ScenarioError("scenario name must be a non-empty string")
            merged["name"] = value
            continue
        if section not in merged:
            raise ScenarioError(
                f"unknown scenario section {section!r}; expected one of "
                f"{sorted(k for k in DEFAULT_SCENARIO if k != 'name')}")
        if not isinstance(value, dict):
            raise ScenarioError(f"scenario section {section!r} must be a dict")
        for key, item in value.items():
            if key not in merged[section]:
                raise ScenarioError(
                    f"unknown scenario key {section}.{key}; expected one of "
                    f"{sorted(DEFAULT_SCENARIO[section])}")
            merged[section][key] = item
    for (section, key), allowed in _RANGES.items():
        if merged[section][key] not in allowed:
            raise ScenarioError(
                f"{section}.{key} must be one of {allowed}, "
                f"got {merged[section][key]!r}")
    for section, key in _POSITIVE:
        if not merged[section][key] > 0:
            raise ScenarioError(
                f"{section}.{key} must be > 0, got {merged[section][key]!r}")
    for section, key in _NON_NEGATIVE:
        if not merged[section][key] >= 0:
            raise ScenarioError(
                f"{section}.{key} must be >= 0, got {merged[section][key]!r}")
    if merged["session"]["write_fraction"] > 1:
        raise ScenarioError("session.write_fraction must be <= 1")
    return merged


def poisson_draw(rng: random.Random, lam: float) -> int:
    """One Poisson(``lam``) sample.

    Knuth's product method below λ=30; the rounded-normal
    approximation above (the per-tick arrival counts this feeds are in
    the hundreds, where the two are indistinguishable and the exact
    method costs O(λ) uniform draws per tick).
    """
    if lam <= 0:
        return 0
    if lam < 30.0:
        bound = math.exp(-lam)
        product = rng.random()
        count = 0
        while product > bound:
            product *= rng.random()
            count += 1
        return count
    draw = round(rng.gauss(lam, math.sqrt(lam)))
    return draw if draw > 0 else 0


class TokenBucket:
    """Deterministic token-bucket throttle (ops-granular)."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float = 0.0):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.stamp = now

    def refill(self, now: float) -> None:
        if now > self.stamp:
            self.tokens = min(self.burst,
                              self.tokens + (now - self.stamp) * self.rate)
            self.stamp = now

    def take(self, amount: float) -> bool:
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False


#: Session lifecycle states (the ``state`` column of the table).
FREE, QUEUED, INFLIGHT, ACKED = 0, 1, 2, 3


class SessionTable:
    """Per-session state as flat array columns keyed by int handles.

    The whole point of the open-loop driver is scale: a session is one
    byte of state plus one double of arrival time, recycled through a
    free list, so a million concurrent sessions are ~9 MB of arrays
    instead of a million Python objects (docs/PERFORMANCE.md's
    array-kernel idiom applied to workload state).
    """

    __slots__ = ("state", "arrival", "_free", "live", "peak_live",
                 "allocated")

    def __init__(self) -> None:
        self.state = array("b")
        self.arrival = array("d")
        self._free: List[int] = []
        self.live = 0
        self.peak_live = 0
        self.allocated = 0

    def alloc(self, now: float) -> int:
        """Stamp a new QUEUED session in; returns its handle."""
        free = self._free
        if free:
            handle = free.pop()
            self.state[handle] = QUEUED
            self.arrival[handle] = now
        else:
            handle = len(self.state)
            self.state.append(QUEUED)
            self.arrival.append(now)
        self.allocated += 1
        self.live += 1
        if self.live > self.peak_live:
            self.peak_live = self.live
        return handle

    def release(self, handle: int) -> None:
        """Retire a session; its handle goes back on the free list."""
        self.state[handle] = FREE
        self.live -= 1
        self._free.append(handle)


class OpenLoopDriver:
    """Open-loop session generator + admission stack for one cluster.

    Registers one network endpoint and speaks real DPR sessions (one
    per target address) at batch granularity.  Attach to a cluster
    built with ``n_client_machines=0`` via :func:`attach_open_loop`.
    """

    def __init__(
        self,
        env: Environment,
        net: Network,
        address: str,
        targets: List[str],
        scenario: Optional[Dict[str, Any]] = None,
        stats: Optional[ClusterStats] = None,
        rng: Optional[random.Random] = None,
    ):
        if not targets:
            raise ValueError("open-loop driver needs at least one target")
        self.env = env
        self.net = net
        self.address = address
        self.targets = list(targets)
        self.scenario = validate_scenario(scenario)
        self.stats = stats if stats is not None else ClusterStats()
        self._rng = make_rng(rng)
        self.table = SessionTable()

        session = self.scenario["session"]
        admission = self.scenario["admission"]
        self._ops: int = session["ops"]
        self._coalesce: int = session["coalesce"]
        self._write_count = round(self._ops * session["write_fraction"])
        self.recovery_pause: float = session["recovery_pause"]
        self.retry_delay: float = session["retry_delay"]
        self.retry_backoff_cap: float = session["retry_backoff_cap"]
        self._max_inflight: int = admission["max_inflight"]

        #: The admission queue holds handles of QUEUED sessions.
        self.admit = BoundedQueue(
            env, admission["queue_capacity"], name=f"admit:{address}",
            policy=admission["policy"], on_shed=self._shed)
        if admission["token_rate"] > 0:
            burst = admission["token_burst"] or self._coalesce * self._ops
            self.bucket: Optional[TokenBucket] = TokenBucket(
                admission["token_rate"], burst, env.now)
        else:
            self.bucket = None

        # DPR bookkeeping, driver-wide (§3.2 at batch granularity).
        self.world_line = 0
        self.version_scalar = 0
        # Driver-local batch ids (like client.BatchIds, which is not
        # imported here: repro.cluster.client imports repro.workloads,
        # so depending on it from this package would be circular).
        self._next_batch = 0
        self._session_ids = [f"{address}/{t}" for t in self.targets]
        self._next_seqno = [1] * len(self.targets)
        self._inflight = [0] * len(self.targets)
        self._rr = 0
        #: batch_id -> (target index, handle tuple) for in-flight batches.
        self._batches: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
        #: object_id -> deque of (version, handle tuple), completed but
        #: not yet covered by a cut; insertion-ordered and versions are
        #: monotone per object, so commit absorption pops from the left.
        self._uncommitted: Dict[str, deque] = {}
        #: Completions since the last send become the next batch's deps.
        self._recent: Dict[str, int] = {}
        self._last_cut_seen: Optional[Dict[str, int]] = None
        self.retry_attempts = 0
        self.paused_until = 0.0

        #: Exact per-session commit latencies (the SLO report computes
        #: exact percentiles; the shared stats reservoir still samples).
        self.commit_latencies: List[float] = []
        self.completed_sessions = 0
        self.committed_sessions = 0
        self.aborted_sessions = 0
        self.shed_sessions = 0

        self.running = True
        self.endpoint = net.register(address)
        self.endpoint.inbox.set_handler(self._on_reply)
        env.process(self._arrival_pump(), name=f"openloop:{address}")

    # -- generating -------------------------------------------------------------

    def _arrival_pump(self):
        """Sample arrivals each tick, admit them, and dispatch."""
        env = self.env
        arrival = self.scenario["arrival"]
        tick: float = arrival["tick"]
        lam = arrival["rate"] * tick
        lognormal = arrival["process"] == "lognormal"
        sigma: float = arrival["sigma"]
        mu = -0.5 * sigma * sigma  # unit-mean intensity multiplier
        rng = self._rng
        alloc = self.table.alloc
        put = self.admit.put
        while self.running:
            if lognormal:
                count = poisson_draw(rng, lam * rng.lognormvariate(mu, sigma))
            else:
                count = poisson_draw(rng, lam)
            now = env.now
            for _ in range(count):
                put(alloc(now))
            self._dispatch()
            yield tick
            if not self.running:
                break

    def _shed(self, handle: int) -> None:
        """Admission-queue eviction: the session never ran."""
        self.table.release(handle)
        self.shed_sessions += 1

    def _dispatch(self) -> None:
        """Drain the admission queue into per-target batches.

        Round-robin over targets with in-flight room, up to
        ``coalesce`` sessions per batch, gated by the token bucket.
        """
        env = self.env
        now = env.now
        if now < self.paused_until:
            return
        admit = self.admit
        if not len(admit):
            return
        bucket = self.bucket
        if bucket is not None:
            bucket.refill(now)
        ops = self._ops
        coalesce = self._coalesce
        max_inflight = self._max_inflight
        inflight = self._inflight
        n_targets = len(self.targets)
        state = self.table.state
        try_get = admit.try_get
        send = self.net.send
        address = self.address
        while len(admit):
            # Next target with in-flight room, starting at the cursor.
            target_idx = -1
            for step in range(n_targets):
                candidate = (self._rr + step) % n_targets
                if inflight[candidate] < max_inflight:
                    target_idx = candidate
                    break
            if target_idx < 0:
                return  # every target is at its cap; replies re-dispatch
            count = min(coalesce, len(admit))
            if bucket is not None:
                affordable = int(bucket.tokens // ops)
                if affordable < count:
                    count = affordable
                if count <= 0:
                    return  # throttled; the next tick refills
                bucket.take(count * ops)
            handles = tuple(try_get() for _ in range(count))
            for handle in handles:
                state[handle] = INFLIGHT
            self._rr = (target_idx + 1) % n_targets
            inflight[target_idx] += 1
            self._send_batch(target_idx, handles, now, send, address)

    def _send_batch(self, target_idx: int, handles: Tuple[int, ...],
                    now: float, send, address: str) -> None:
        recent = self._recent
        if recent:
            deps = tuple(Token(obj, ver) for obj, ver in recent.items())
            recent.clear()
        else:
            deps = ()
        op_count = len(handles) * self._ops
        write_count = len(handles) * self._write_count
        self._next_batch += 1
        batch_id = self._next_batch
        first_seqno = self._next_seqno[target_idx]
        self._next_seqno[target_idx] = first_seqno + op_count
        request = BatchRequest(
            batch_id, self._session_ids[target_idx], address,
            self.world_line, self.version_scalar, first_seqno, op_count,
            write_count, deps, now, None, None)
        self._batches[batch_id] = (target_idx, handles)
        send(address, self.targets[target_idx], request, size_ops=op_count)

    # -- receiving --------------------------------------------------------------

    def _on_reply(self, message) -> None:
        """Inbox sink handler: fold one reply into the driver."""
        env = self.env
        reply = message.payload
        now = env.now
        status = reply.status
        if status == "rolled_back":
            self._handle_rollback(reply.world_line, reply.cut, now)
            return
        entry = self._batches.pop(reply.batch_id, None)
        if entry is None:
            return  # straggler from before a rollback, or a duplicate
        target_idx, handles = entry
        self._inflight[target_idx] -= 1
        if status == "ok":
            self._complete(reply, handles, now)
        else:
            # "retry" / "not_owner": the ops never ran.  Back off and
            # push the sessions back through admission — under pressure
            # they compete with fresh arrivals and may be shed, which
            # is exactly what an admission stack is for.
            exponent = min(self.retry_attempts, 6)
            self.retry_attempts += 1
            backoff = min(self.retry_delay * (2 ** exponent),
                          self.retry_backoff_cap)
            backoff *= 0.5 + 0.5 * self._rng.random()
            self.paused_until = max(self.paused_until, now + backoff)
            state = self.table.state
            put = self.admit.put
            for handle in handles:
                state[handle] = QUEUED
                put(handle)
        self._dispatch()

    def _complete(self, reply, handles: Tuple[int, ...], now: float) -> None:
        self.retry_attempts = 0
        version = reply.version
        object_id = reply.object_id
        if version > self.version_scalar:
            self.version_scalar = version
        if version > self._recent.get(object_id, 0):
            self._recent[object_id] = version
        state = self.table.state
        arrival = self.table.arrival
        op_latency = self.stats.operation_latency.add
        for handle in handles:
            state[handle] = ACKED
            op_latency(now - arrival[handle])
        self.completed_sessions += len(handles)
        self.stats.completed.add(now, reply.op_count)
        pending = self._uncommitted.get(object_id)
        if pending is None:
            pending = self._uncommitted[object_id] = deque()
        pending.append((version, handles))
        cut = reply.cut
        if cut is not None and cut.versions != self._last_cut_seen:
            self._absorb_cut(cut, now)

    def _absorb_cut(self, cut: DprCut, now: float) -> None:
        """Retire ACKED sessions the cut covers; their commit latency
        is arrival-to-cut, the open-loop number a knee curve plots."""
        self._last_cut_seen = dict(cut.versions)
        arrival = self.table.arrival
        release = self.table.release
        lat_append = self.commit_latencies.append
        commit_lat = self.stats.commit_latency.add
        committed = self.stats.committed
        ops = self._ops
        version_of = cut.version_of
        for object_id, pending in self._uncommitted.items():
            cover = version_of(object_id)
            while pending and pending[0][0] <= cover:
                _, handles = pending.popleft()
                for handle in handles:
                    latency = now - arrival[handle]
                    lat_append(latency)
                    commit_lat(latency)
                    release(handle)
                committed.add(now, len(handles) * ops)
                self.committed_sessions += len(handles)

    def _handle_rollback(self, new_world_line: int, cut: Optional[DprCut],
                         now: float) -> None:
        """World-line bump: commit what the cut covers, abort the rest,
        pause dispatch for the recovery window."""
        if new_world_line <= self.world_line:
            return  # duplicate notification
        self.world_line = new_world_line
        self._absorb_cut(cut if cut is not None else DprCut(), now)
        release = self.table.release
        aborted = self.stats.aborted
        ops = self._ops
        for pending in self._uncommitted.values():
            while pending:
                _, handles = pending.popleft()
                for handle in handles:
                    release(handle)
                aborted.add(now, len(handles) * ops)
                self.aborted_sessions += len(handles)
        # In-flight batches died with the old world-line; their
        # straggling replies describe rolled-back effects.
        inflight = self._inflight
        for batch_id in sorted(self._batches):
            target_idx, handles = self._batches[batch_id]
            inflight[target_idx] -= 1
            for handle in handles:
                release(handle)
            aborted.add(now, len(handles) * ops)
            self.aborted_sessions += len(handles)
        self._batches.clear()
        self._recent.clear()
        self._last_cut_seen = None
        self.retry_attempts = 0
        self.paused_until = now + self.recovery_pause

    # -- control ----------------------------------------------------------------

    def stop(self) -> None:
        self.running = False


def slo_report(driver: OpenLoopDriver) -> Dict[str, Any]:
    """Summarize a finished run for the knee curve.

    Percentiles are exact (computed over *every* commit latency, not a
    reservoir sample): an open-loop p999 from 1k sampled points is
    noise, and exactness is what makes the report byte-identical
    across reruns.
    """
    ordered = sorted(driver.commit_latencies)
    if ordered:
        latency = {
            "count": len(ordered),
            "p50": interpolated_percentile(ordered, 50),
            "p99": interpolated_percentile(ordered, 99),
            "p999": interpolated_percentile(ordered, 99.9),
        }
    else:
        latency = {"count": 0, "p50": 0.0, "p99": 0.0, "p999": 0.0}
    admit = driver.admit
    return {
        "scenario": driver.scenario["name"],
        "offered_sessions": driver.table.allocated,
        "shed_sessions": admit.shed_items + admit.rejected_items,
        "completed_sessions": driver.completed_sessions,
        "committed_sessions": driver.committed_sessions,
        "aborted_sessions": driver.aborted_sessions,
        "live_sessions": driver.table.live,
        "peak_live_sessions": driver.table.peak_live,
        "commit_latency": latency,
    }


def attach_open_loop(cluster, scenario: Optional[Dict[str, Any]] = None,
                     address: str = "openloop-0") -> OpenLoopDriver:
    """Attach a driver to a cluster built with ``n_client_machines=0``.

    Targets come from the cluster's ``client_targets`` (D-Redis
    proxies) or, failing that, its worker addresses (D-FASTER).  The
    driver's RNG is spawned from the cluster's seed stream, so one
    config seed still reproduces the whole run.
    """
    targets = getattr(cluster, "client_targets", None)
    if targets is None:
        targets = [worker.address for worker in cluster.workers]
    return OpenLoopDriver(
        cluster.env, cluster.net, address, list(targets),
        scenario=scenario, stats=cluster.stats,
        rng=spawn(cluster._rng, address))
