"""Reproduction of *Asynchronous Prefix Recoverability for Fast Distributed
Stores* (DPR, SIGMOD 2021).

The package is organised as:

- :mod:`repro.sim` — deterministic discrete-event simulation kernel plus
  network and storage latency models (the substitute for the paper's Azure
  testbed).
- :mod:`repro.faster` — a FASTER-style single-node key-value store with a
  HybridLog, CPR checkpointing and a THROW/PURGE rollback state machine.
- :mod:`repro.redisclone` — a Redis-style single-threaded cache-store with
  BGSAVE snapshots and an append-only file for synchronous durability.
- :mod:`repro.core` — the DPR protocol itself: StateObjects, sessions,
  precedence graphs, cut finders, world-lines, and the libDPR wrappers.
- :mod:`repro.cluster` — the distributed layer: metadata store, ownership
  mapping, cluster manager, D-FASTER and D-Redis assemblies.
- :mod:`repro.baselines` — Cassandra-like baseline and recoverability-level
  adapters used by the Figure 19 study.
- :mod:`repro.workloads` — YCSB workload generators.
- :mod:`repro.bench` — the harness that regenerates every figure in the
  paper's evaluation section.
"""

from repro.core.cuts import DprCut, DprGuarantee
from repro.core.session import Session, SessionStatus
from repro.core.state_object import StateObject
from repro.core.versioning import Token

__all__ = [
    "DprCut",
    "DprGuarantee",
    "Session",
    "SessionStatus",
    "StateObject",
    "Token",
]

__version__ = "1.0.0"
