"""The in-memory data structures behind the Redis clone.

One :class:`DataStore` holds a flat keyspace of typed values (strings,
hashes, lists, sets) with optional per-key expiry.  All accesses are
strictly serial — the clone, like Redis, is single-threaded — so no
locking appears anywhere.

Expiry uses a caller-supplied clock (the simulation passes ``env.now``)
and is *lazy*: keys are reaped when touched, plus an explicit sweep for
tests.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Set


class RedisError(Exception):
    """A command error, rendered to clients as ``-ERR ...``."""


class WrongTypeError(RedisError):
    """Operation against a key holding the wrong kind of value."""

    def __init__(self):
        super().__init__(
            "WRONGTYPE Operation against a key holding the wrong kind of value"
        )


_STRING = "string"
_HASH = "hash"
_LIST = "list"
_SET = "set"


class DataStore:
    """The keyspace: typed values plus expiry times."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._values: Dict[str, Any] = {}
        self._types: Dict[str, str] = {}
        self._expires: Dict[str, float] = {}
        self._clock = clock or (lambda: 0.0)

    # -- infrastructure ---------------------------------------------------

    def now(self) -> float:
        return self._clock()

    def _reap(self, key: str) -> None:
        deadline = self._expires.get(key)
        if deadline is not None and self.now() >= deadline:
            self._remove(key)

    def _remove(self, key: str) -> None:
        self._values.pop(key, None)
        self._types.pop(key, None)
        self._expires.pop(key, None)

    def _typed(self, key: str, expected: str, create: Callable[[], Any]):
        """Fetch a live value of the expected type, creating if absent."""
        self._reap(key)
        if key in self._values:
            if self._types[key] != expected:
                raise WrongTypeError()
            return self._values[key]
        value = create()
        self._values[key] = value
        self._types[key] = expected
        return value

    def _peek(self, key: str, expected: str):
        self._reap(key)
        if key not in self._values:
            return None
        if self._types[key] != expected:
            raise WrongTypeError()
        return self._values[key]

    # -- generic -------------------------------------------------------------

    def exists(self, key: str) -> bool:
        self._reap(key)
        return key in self._values

    def delete(self, *keys: str) -> int:
        removed = 0
        for key in keys:
            self._reap(key)
            if key in self._values:
                self._remove(key)
                removed += 1
        return removed

    def type_of(self, key: str) -> str:
        self._reap(key)
        return self._types.get(key, "none")

    def keys(self) -> List[str]:
        for key in list(self._expires):
            self._reap(key)
        return list(self._values)

    def dbsize(self) -> int:
        return len(self.keys())

    def flushall(self) -> None:
        self._values.clear()
        self._types.clear()
        self._expires.clear()

    # -- expiry ----------------------------------------------------------------

    def expire(self, key: str, seconds: float) -> bool:
        self._reap(key)
        if key not in self._values:
            return False
        self._expires[key] = self.now() + seconds
        return True

    def ttl(self, key: str) -> float:
        """Seconds to live; -2 if missing, -1 if no expiry (as in Redis)."""
        self._reap(key)
        if key not in self._values:
            return -2
        if key not in self._expires:
            return -1
        return self._expires[key] - self.now()

    def persist(self, key: str) -> bool:
        self._reap(key)
        return self._expires.pop(key, None) is not None

    # -- strings ------------------------------------------------------------------

    def set(self, key: str, value: str) -> None:
        self._remove(key)
        self._values[key] = str(value)
        self._types[key] = _STRING

    def setnx(self, key: str, value: str) -> bool:
        self._reap(key)
        if key in self._values:
            return False
        self.set(key, value)
        return True

    def get(self, key: str) -> Optional[str]:
        return self._peek(key, _STRING)

    def getset(self, key: str, value: str) -> Optional[str]:
        old = self._peek(key, _STRING)
        self.set(key, value)
        return old

    def append(self, key: str, suffix: str) -> int:
        current = self._peek(key, _STRING) or ""
        combined = current + str(suffix)
        self.set(key, combined)
        return len(combined)

    def strlen(self, key: str) -> int:
        return len(self._peek(key, _STRING) or "")

    def incrby(self, key: str, amount: int = 1) -> int:
        current = self._peek(key, _STRING)
        if current is None:
            value = 0
        else:
            try:
                value = int(current)
            except ValueError:
                raise RedisError("value is not an integer or out of range")
        value += amount
        self.set(key, str(value))
        return value

    # -- hashes ---------------------------------------------------------------------

    def hset(self, key: str, field: str, value: str) -> int:
        table = self._typed(key, _HASH, dict)
        added = 0 if field in table else 1
        table[field] = str(value)
        return added

    def hget(self, key: str, field: str) -> Optional[str]:
        table = self._peek(key, _HASH)
        if table is None:
            return None
        return table.get(field)

    def hdel(self, key: str, *fields: str) -> int:
        table = self._peek(key, _HASH)
        if table is None:
            return 0
        removed = 0
        for field in fields:
            if field in table:
                del table[field]
                removed += 1
        if not table:
            self._remove(key)
        return removed

    def hgetall(self, key: str) -> Dict[str, str]:
        table = self._peek(key, _HASH)
        return dict(table) if table else {}

    def hlen(self, key: str) -> int:
        table = self._peek(key, _HASH)
        return len(table) if table else 0

    # -- lists -----------------------------------------------------------------------

    def lpush(self, key: str, *values: str) -> int:
        items = self._typed(key, _LIST, list)
        for value in values:
            items.insert(0, str(value))
        return len(items)

    def rpush(self, key: str, *values: str) -> int:
        items = self._typed(key, _LIST, list)
        items.extend(str(v) for v in values)
        return len(items)

    def lpop(self, key: str) -> Optional[str]:
        items = self._peek(key, _LIST)
        if not items:
            return None
        value = items.pop(0)
        if not items:
            self._remove(key)
        return value

    def rpop(self, key: str) -> Optional[str]:
        items = self._peek(key, _LIST)
        if not items:
            return None
        value = items.pop()
        if not items:
            self._remove(key)
        return value

    def llen(self, key: str) -> int:
        items = self._peek(key, _LIST)
        return len(items) if items else 0

    def lrange(self, key: str, start: int, stop: int) -> List[str]:
        items = self._peek(key, _LIST) or []
        # Redis LRANGE stop is inclusive; -1 means end of list.
        if stop == -1:
            return list(items[start:])
        return list(items[start:stop + 1])

    # -- sets --------------------------------------------------------------------------

    def sadd(self, key: str, *members: str) -> int:
        group = self._typed(key, _SET, set)
        added = 0
        for member in members:
            member = str(member)
            if member not in group:
                group.add(member)
                added += 1
        return added

    def srem(self, key: str, *members: str) -> int:
        group = self._peek(key, _SET)
        if group is None:
            return 0
        removed = 0
        for member in members:
            member = str(member)
            if member in group:
                group.remove(member)
                removed += 1
        if not group:
            self._remove(key)
        return removed

    def sismember(self, key: str, member: str) -> bool:
        group = self._peek(key, _SET)
        return bool(group) and str(member) in group

    def scard(self, key: str) -> int:
        group = self._peek(key, _SET)
        return len(group) if group else 0

    def smembers(self, key: str) -> Set[str]:
        group = self._peek(key, _SET)
        return set(group) if group else set()

    # -- snapshot support ----------------------------------------------------------------

    def dump(self) -> Dict[str, Any]:
        """A deep-enough copy for RDB-style snapshots."""
        values = {}
        for key, value in self._values.items():
            if isinstance(value, dict):
                values[key] = dict(value)
            elif isinstance(value, list):
                values[key] = list(value)
            elif isinstance(value, set):
                values[key] = set(value)
            else:
                values[key] = value
        return {
            "values": values,
            "types": dict(self._types),
            "expires": dict(self._expires),
        }

    def load(self, image: Dict[str, Any]) -> None:
        self._values = {}
        for key, value in image["values"].items():
            if isinstance(value, dict):
                self._values[key] = dict(value)
            elif isinstance(value, list):
                self._values[key] = list(value)
            elif isinstance(value, set):
                self._values[key] = set(value)
            else:
                self._values[key] = value
        self._types = dict(image["types"])
        self._expires = dict(image["expires"])
