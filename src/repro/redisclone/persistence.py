"""Snapshot (RDB-style) and append-only-file persistence.

``BGSAVE`` forks in real Redis; here :meth:`SnapshotStore.bgsave` takes
the copy synchronously (the fork's copy-on-write moment) and the
*durability* of that copy completes later — the server exposes
``LASTSAVE`` so pollers can detect completion, exactly how the D-Redis
wrapper decides when a ``Commit()`` has finished (§6).

The AOF implements the three classic fsync policies; ``ALWAYS`` is what
the Figure 19 "Sync" configuration turns on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


class AofPolicy(enum.Enum):
    """``appendfsync`` settings."""

    NO = "no"          # kernel decides; counts as eventual durability
    EVERYSEC = "everysec"
    ALWAYS = "always"  # fsync before acking: synchronous recoverability


@dataclass
class Snapshot:
    """One completed or in-flight RDB snapshot."""

    snapshot_id: int
    image: Dict[str, Any]
    started_at: float
    completed_at: Optional[float] = None
    #: Estimated on-disk size, for the storage-latency model.
    size_bytes: int = 0

    @property
    def durable(self) -> bool:
        return self.completed_at is not None


class SnapshotStore:
    """Holds RDB snapshots and the LASTSAVE bookkeeping."""

    #: Nominal per-key size for flush modelling.
    KEY_BYTES = 64

    def __init__(self):
        self._snapshots: List[Snapshot] = []
        self._next_id = 1

    def bgsave(self, image: Dict[str, Any], now: float) -> Snapshot:
        """Begin a background save of a state image (the 'fork moment')."""
        snapshot = Snapshot(
            snapshot_id=self._next_id,
            image=image,
            started_at=now,
            size_bytes=max(1, len(image["values"])) * self.KEY_BYTES,
        )
        self._next_id += 1
        self._snapshots.append(snapshot)
        return snapshot

    def complete(self, snapshot: Snapshot, now: float) -> None:
        snapshot.completed_at = now

    def lastsave(self) -> float:
        """Completion time of the newest durable snapshot (0 if none)."""
        durable = [s for s in self._snapshots if s.durable]
        if not durable:
            return 0.0
        return max(s.completed_at for s in durable)

    def latest_durable(self) -> Optional[Snapshot]:
        durable = [s for s in self._snapshots if s.durable]
        return durable[-1] if durable else None

    def durable_snapshots(self) -> List[Snapshot]:
        return [s for s in self._snapshots if s.durable]

    def drop_after(self, snapshot_id: int) -> None:
        """Discard snapshots newer than ``snapshot_id`` (rollback)."""
        self._snapshots = [
            s for s in self._snapshots if s.snapshot_id <= snapshot_id
        ]


class AppendOnlyFile:
    """The AOF: a durable command log with fsync policies.

    ``append`` records a mutating command; whether it is durable
    immediately depends on the policy.  ``fsync`` (driven by the server
    clock under EVERYSEC, or per-command under ALWAYS) advances the
    durable frontier.
    """

    def __init__(self, policy: AofPolicy = AofPolicy.NO):
        self.policy = policy
        self._entries: List[Tuple] = []
        self._durable_count = 0
        self.fsyncs = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def durable_count(self) -> int:
        return self._durable_count

    def append(self, command: Sequence) -> None:
        self._entries.append(tuple(command))
        if self.policy is AofPolicy.ALWAYS:
            self.fsync()

    def fsync(self) -> None:
        self._durable_count = len(self._entries)
        self.fsyncs += 1

    def durable_entries(self) -> List[Tuple]:
        return list(self._entries[: self._durable_count])

    def truncate_to_durable(self) -> None:
        """Crash semantics: unsynced suffix is lost."""
        del self._entries[self._durable_count:]

    def rewrite(self, keep_from: int = 0) -> None:
        """AOF rewrite after a snapshot subsumes a prefix."""
        self._entries = self._entries[keep_from:]
        self._durable_count = max(0, self._durable_count - keep_from)
