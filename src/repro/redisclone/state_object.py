"""The Redis clone as a DPR StateObject — the D-Redis server side (§6).

The mapping the paper describes:

- ``Commit()``  -> ``BGSAVE`` under an exclusive latch (the snapshot is
  the sealed version's image; ``LASTSAVE`` polling decides durability);
- ``Restore()`` -> restart the Redis instance from the snapshot that
  matches the restore token, without AOF replay;
- operations    -> unmodified Redis commands, forwarded as-is.

Because the wrapper executes whole batches under one shared latch, all
operations of a batch land in the same version; the libDPR server
drives this class exactly like any other StateObject.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.core.state_object import StateObject
from repro.redisclone.persistence import AofPolicy, Snapshot
from repro.redisclone.server import RedisServer


class RedisStateObject(StateObject):
    """One D-Redis shard: an unmodified RedisServer behind StateObject."""

    def __init__(self, object_id: str, clock=None,
                 aof_policy: AofPolicy = AofPolicy.NO, **kwargs):
        super().__init__(object_id, **kwargs)
        self.server = RedisServer(clock=clock, aof_policy=aof_policy)
        #: DPR version -> the BGSAVE snapshot that seals it.
        self._version_snapshots: Dict[int, Snapshot] = {}

    # -- storage hooks ------------------------------------------------------

    def apply(self, op: Sequence) -> Any:
        """Forward one command tuple to the unmodified server."""
        return self.server.execute(op)

    def snapshot(self, version: int) -> None:
        """Seal = BGSAVE; the image is captured at the latch boundary."""
        snapshot = self.server.bgsave()
        # Durability timing is owned by the flush layer; completing the
        # snapshot record here models the fork's consistent image.  The
        # *token* only becomes durable when mark_persisted runs.
        self.server.complete_bgsave(snapshot)
        self._version_snapshots[version] = snapshot

    def checkpoint_bytes(self, version: int) -> int:
        return self._version_snapshots[version].size_bytes

    def rollback_to(self, version: int) -> None:
        """Restore() = restart the instance from the matching snapshot."""
        candidates = [v for v in self._version_snapshots if v <= version]
        snapshot = None
        if candidates:
            snapshot = self._version_snapshots[max(candidates)]
        for stale in [v for v in self._version_snapshots if v > version]:
            del self._version_snapshots[stale]
        if snapshot is None:
            self.server.restart(snapshot=None, replay_aof=False)
            self.server.db.flushall()
        else:
            self.server.restart(snapshot=snapshot, replay_aof=False)

    # -- convenience ----------------------------------------------------------

    def get(self, key: str) -> Any:
        return self.server.execute(("GET", key))
