"""A Redis-style single-threaded cache-store (the D-Redis substrate, §6).

The clone reproduces the externally observable contract libDPR relies
on: strictly serial command execution, asynchronous ``BGSAVE`` /
``LASTSAVE`` snapshot persistence, an optional append-only file for
synchronous durability (the Figure 19 "Sync" baseline), and
restart-based recovery (D-Redis implements ``Restore()`` by restarting
the instance from a snapshot).

The command set covers strings, counters, hashes, lists, sets and
key expiry — enough to run the paper's workloads and the examples.
"""

from repro.redisclone.datastore import DataStore, RedisError, WrongTypeError
from repro.redisclone.commands import COMMANDS, execute_command
from repro.redisclone.server import RedisServer
from repro.redisclone.persistence import AofPolicy, SnapshotStore
from repro.redisclone.state_object import RedisStateObject

__all__ = [
    "AofPolicy",
    "COMMANDS",
    "DataStore",
    "RedisError",
    "RedisServer",
    "RedisStateObject",
    "SnapshotStore",
    "WrongTypeError",
    "execute_command",
]
