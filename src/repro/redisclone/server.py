"""The single-threaded Redis-clone server.

Processes one command at a time (so a batch executes atomically w.r.t.
snapshots — the property the D-Redis wrapper's shared latch provides),
owns the snapshot store and the optional AOF, and supports crash and
restart with the real recovery order: newest durable RDB image first,
then replay of the durable AOF suffix.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.redisclone.commands import execute_command, is_mutating
from repro.redisclone.datastore import DataStore, RedisError
from repro.redisclone.persistence import (
    AofPolicy,
    AppendOnlyFile,
    Snapshot,
    SnapshotStore,
)


class RedisServer:
    """One Redis-clone instance."""

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 aof_policy: AofPolicy = AofPolicy.NO):
        self._clock = clock or (lambda: 0.0)
        self.db = DataStore(clock=self._clock)
        self.snapshots = SnapshotStore()
        self.aof = AppendOnlyFile(policy=aof_policy)
        #: Commands the current AOF prefix starts after (set on BGSAVE so
        #: recovery replays only the post-snapshot suffix).
        self._aof_offset_at_snapshot: dict = {}
        self.commands_processed = 0
        self._running = True

    @property
    def running(self) -> bool:
        return self._running

    def now(self) -> float:
        return self._clock()

    # -- command path ---------------------------------------------------

    def execute(self, command: Sequence) -> Any:
        """Execute one command (raises RedisError on bad input)."""
        if not self._running:
            raise ConnectionError("server is down")
        result = execute_command(self.db, command)
        if is_mutating(command):
            self.aof.append(command)
        self.commands_processed += 1
        return result

    def execute_batch(self, commands: Sequence[Sequence]) -> List[Any]:
        """Execute a batch serially; per-command errors become values."""
        results: List[Any] = []
        for command in commands:
            try:
                results.append(self.execute(command))
            except RedisError as error:
                results.append(error)
        return results

    # -- persistence ------------------------------------------------------

    def bgsave(self) -> Snapshot:
        """``BGSAVE``: snapshot now, durable later (caller completes)."""
        snapshot = self.snapshots.bgsave(self.db.dump(), self.now())
        self._aof_offset_at_snapshot[snapshot.snapshot_id] = len(self.aof)
        return snapshot

    def complete_bgsave(self, snapshot: Snapshot) -> None:
        """The background writer finished; LASTSAVE advances."""
        self.snapshots.complete(snapshot, self.now())

    def save(self) -> Snapshot:
        """Synchronous ``SAVE``."""
        snapshot = self.bgsave()
        self.complete_bgsave(snapshot)
        return snapshot

    def lastsave(self) -> float:
        return self.snapshots.lastsave()

    def fsync_aof(self) -> None:
        self.aof.fsync()

    # -- crash & restart ------------------------------------------------------

    def crash(self) -> None:
        """Process dies: volatile state is gone, unsynced AOF lost."""
        self._running = False
        self.aof.truncate_to_durable()

    def restart(self, snapshot: Optional[Snapshot] = None,
                replay_aof: Optional[bool] = None) -> None:
        """Restart from durable state.

        Loads ``snapshot`` (default: newest durable), then — when the
        AOF is enabled or ``replay_aof`` forces it — replays the durable
        AOF suffix recorded after that snapshot.  D-Redis's
        ``Restore(token)`` calls this with the snapshot matching the
        token and *without* AOF replay (DPR's durability comes from the
        snapshots).
        """
        if snapshot is None:
            snapshot = self.snapshots.latest_durable()
        self.db = DataStore(clock=self._clock)
        if snapshot is not None:
            self.db.load(snapshot.image)
        if replay_aof is None:
            replay_aof = self.aof.policy is not AofPolicy.NO
        if replay_aof:
            offset = 0
            if snapshot is not None:
                offset = self._aof_offset_at_snapshot.get(
                    snapshot.snapshot_id, 0
                )
            for command in self.aof.durable_entries()[offset:]:
                execute_command(self.db, command)
        self._running = True
