"""The command table: name -> (arity, handler, mutating?).

Commands arrive as ``(NAME, arg, ...)`` tuples (the simulated cluster
skips RESP text framing; batching and headers live in libDPR).  The
``mutating`` flag tells the append-only file which commands to log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Sequence, Tuple

from repro.redisclone.datastore import DataStore, RedisError


@dataclass(frozen=True)
class CommandSpec:
    """Arity is the minimum argument count; ``variadic`` allows more."""

    name: str
    arity: int
    handler: Callable[..., Any]
    mutating: bool
    variadic: bool = False


def _spec(name: str, arity: int, mutating: bool, variadic: bool = False):
    def wrap(handler: Callable[..., Any]) -> CommandSpec:
        return CommandSpec(name=name, arity=arity, handler=handler,
                           mutating=mutating, variadic=variadic)
    return wrap


COMMANDS: Dict[str, CommandSpec] = {}


def _register(name: str, arity: int, mutating: bool, variadic: bool = False):
    def decorate(handler):
        COMMANDS[name] = CommandSpec(name, arity, handler, mutating, variadic)
        return handler
    return decorate


# -- strings ----------------------------------------------------------------

@_register("SET", 2, mutating=True)
def _set(db: DataStore, key, value):
    db.set(key, value)
    return "OK"


@_register("SETNX", 2, mutating=True)
def _setnx(db: DataStore, key, value):
    return 1 if db.setnx(key, value) else 0


@_register("GET", 1, mutating=False)
def _get(db: DataStore, key):
    return db.get(key)


@_register("GETSET", 2, mutating=True)
def _getset(db: DataStore, key, value):
    return db.getset(key, value)


@_register("APPEND", 2, mutating=True)
def _append(db: DataStore, key, value):
    return db.append(key, value)


@_register("STRLEN", 1, mutating=False)
def _strlen(db: DataStore, key):
    return db.strlen(key)


@_register("INCR", 1, mutating=True)
def _incr(db: DataStore, key):
    return db.incrby(key, 1)


@_register("DECR", 1, mutating=True)
def _decr(db: DataStore, key):
    return db.incrby(key, -1)


@_register("INCRBY", 2, mutating=True)
def _incrby(db: DataStore, key, amount):
    return db.incrby(key, int(amount))


# -- generic ------------------------------------------------------------------

@_register("DEL", 1, mutating=True, variadic=True)
def _del(db: DataStore, *keys):
    return db.delete(*keys)


@_register("EXISTS", 1, mutating=False)
def _exists(db: DataStore, key):
    return 1 if db.exists(key) else 0


@_register("TYPE", 1, mutating=False)
def _type(db: DataStore, key):
    return db.type_of(key)


@_register("KEYS", 0, mutating=False)
def _keys(db: DataStore):
    return sorted(db.keys())


@_register("DBSIZE", 0, mutating=False)
def _dbsize(db: DataStore):
    return db.dbsize()


@_register("FLUSHALL", 0, mutating=True)
def _flushall(db: DataStore):
    db.flushall()
    return "OK"


@_register("EXPIRE", 2, mutating=True)
def _expire(db: DataStore, key, seconds):
    return 1 if db.expire(key, float(seconds)) else 0


@_register("TTL", 1, mutating=False)
def _ttl(db: DataStore, key):
    return db.ttl(key)


@_register("PERSIST", 1, mutating=True)
def _persist(db: DataStore, key):
    return 1 if db.persist(key) else 0


# -- hashes --------------------------------------------------------------------

@_register("HSET", 3, mutating=True)
def _hset(db: DataStore, key, field, value):
    return db.hset(key, field, value)


@_register("HGET", 2, mutating=False)
def _hget(db: DataStore, key, field):
    return db.hget(key, field)


@_register("HDEL", 2, mutating=True, variadic=True)
def _hdel(db: DataStore, key, *fields):
    return db.hdel(key, *fields)


@_register("HGETALL", 1, mutating=False)
def _hgetall(db: DataStore, key):
    return db.hgetall(key)


@_register("HLEN", 1, mutating=False)
def _hlen(db: DataStore, key):
    return db.hlen(key)


# -- lists ----------------------------------------------------------------------

@_register("LPUSH", 2, mutating=True, variadic=True)
def _lpush(db: DataStore, key, *values):
    return db.lpush(key, *values)


@_register("RPUSH", 2, mutating=True, variadic=True)
def _rpush(db: DataStore, key, *values):
    return db.rpush(key, *values)


@_register("LPOP", 1, mutating=True)
def _lpop(db: DataStore, key):
    return db.lpop(key)


@_register("RPOP", 1, mutating=True)
def _rpop(db: DataStore, key):
    return db.rpop(key)


@_register("LLEN", 1, mutating=False)
def _llen(db: DataStore, key):
    return db.llen(key)


@_register("LRANGE", 3, mutating=False)
def _lrange(db: DataStore, key, start, stop):
    return db.lrange(key, int(start), int(stop))


# -- sets ------------------------------------------------------------------------

@_register("SADD", 2, mutating=True, variadic=True)
def _sadd(db: DataStore, key, *members):
    return db.sadd(key, *members)


@_register("SREM", 2, mutating=True, variadic=True)
def _srem(db: DataStore, key, *members):
    return db.srem(key, *members)


@_register("SISMEMBER", 2, mutating=False)
def _sismember(db: DataStore, key, member):
    return 1 if db.sismember(key, member) else 0


@_register("SCARD", 1, mutating=False)
def _scard(db: DataStore, key):
    return db.scard(key)


@_register("SMEMBERS", 1, mutating=False)
def _smembers(db: DataStore, key):
    return sorted(db.smembers(key))


def execute_command(db: DataStore, command: Sequence) -> Any:
    """Dispatch one ``(NAME, arg, ...)`` tuple against the store."""
    if not command:
        raise RedisError("empty command")
    name = str(command[0]).upper()
    spec = COMMANDS.get(name)
    if spec is None:
        raise RedisError(f"unknown command '{name}'")
    args = command[1:]
    if len(args) < spec.arity or (len(args) > spec.arity and not spec.variadic):
        raise RedisError(f"wrong number of arguments for '{name.lower()}' command")
    return spec.handler(db, *args)


def is_mutating(command: Sequence) -> bool:
    """Whether a command must be logged to the AOF."""
    spec = COMMANDS.get(str(command[0]).upper())
    return spec is not None and spec.mutating
