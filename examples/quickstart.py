"""Quickstart: DPR in fifty lines.

Two FASTER shards, one client session spanning both, a cut finder, and
a failure — showing the paper's core idea: operations complete at
memory speed, commits arrive asynchronously as prefixes, and a failure
rolls the world back to a prefix-consistent cut.

Run:  python examples/quickstart.py
"""

from repro.core.finder import ApproximateDprFinder
from repro.core.libdpr import DprClientSession, DprServer
from repro.core.recovery import RecoveryController
from repro.core.session import RollbackError
from repro.faster.state_object import FasterStateObject


def main():
    # Two shards of the global keyspace, each a FASTER instance.
    finder = ApproximateDprFinder()
    shards = {name: FasterStateObject(name) for name in ("A", "B")}
    servers = {name: DprServer(shard, finder)
               for name, shard in shards.items()}

    session = DprClientSession("quickstart")

    def do(shard, *ops):
        header = session.prepare_batch(shard, len(ops))
        return session.absorb_response(
            servers[shard].process_batch(header, list(ops)))

    # Operations complete immediately — no flush, no coordination.
    do("A", ("set", "user:1", "ada"))
    do("B", ("set", "clicks:1", 10))
    do("B", ("incr", "clicks:1", 5))
    print("completed 3 ops;  committed so far:", session.committed_seqno)

    # Commit happens in the background (here: explicitly).  The finder
    # assembles the per-shard tokens into a DPR-cut.
    servers["A"].commit()
    servers["B"].commit()
    cut = finder.tick()
    session.refresh_commit(cut)
    print(f"after Commit(): cut={cut}  committed prefix="
          f"{session.committed_seqno}/3")

    # More (uncommitted) work...
    do("A", ("set", "user:1", "grace"))
    do("B", ("incr", "clicks:1", 100))
    print("wrote 2 more ops on top of uncommitted state")

    # ...then a failure.  Every shard restores to the guaranteed cut.
    controller = RecoveryController(finder)
    controller.recover(shards)

    # The session's next call reports the exact surviving prefix.
    try:
        do("A", ("read", "user:1"))
    except RollbackError as error:
        print(f"failure detected: {error}")
        session.acknowledge_rollback()

    value = do("A", ("read", "user:1"))[0]
    clicks = do("B", ("read", "clicks:1"))[0]
    print(f"recovered state: user:1={value!r} clicks:1={clicks} "
          f"(the committed prefix, nothing after)")
    assert value == "ada" and clicks == 15


if __name__ == "__main__":
    main()
