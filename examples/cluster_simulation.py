"""Drive the full simulated D-FASTER cluster, including a failure.

Reproduces a miniature of the paper's evaluation setup — 4 workers,
windowed batched clients, 100 ms checkpoints over local SSD, the
approximate DPR finder — and injects a failure halfway through,
printing a Figure 16-style timeline.

Run:  python examples/cluster_simulation.py
"""

from repro.cluster import DFasterCluster, DFasterConfig
from repro.workloads import YCSB_A_ZIPFIAN


def main():
    cluster = DFasterCluster(DFasterConfig(
        n_workers=4,
        vcpus=8,
        n_client_machines=4,
        workload=YCSB_A_ZIPFIAN,
        checkpoint_interval=0.1,
    ))
    cluster.schedule_failure(1.0)
    stats = cluster.run(duration=2.0, warmup=0.2)

    throughput = stats.throughput(start=0.2, end=2.0, duration=1.8)
    print(f"throughput: {throughput / 1e6:.1f} M ops/s "
          f"(4 workers x 8 vCPUs, simulated)")
    print(f"operation latency p50: "
          f"{stats.operation_latency.percentile(50) * 1e3:.2f} ms")
    print(f"commit latency p50:    "
          f"{stats.commit_latency.percentile(50) * 1e3:.1f} ms")
    print()

    completed = dict(stats.completed.series(0.25))
    committed = dict(stats.committed.series(0.25))
    aborted = dict(stats.aborted.series(0.25))
    print("timeline (failure at t=1.0s):")
    print(f"{'t(s)':>6} {'completed M/s':>14} {'committed M/s':>14} "
          f"{'aborted M/s':>12}")
    for bucket in sorted(completed):
        print(f"{bucket:6.2f} {completed.get(bucket, 0) / 1e6:14.1f} "
              f"{committed.get(bucket, 0) / 1e6:14.1f} "
              f"{aborted.get(bucket, 0) / 1e6:12.2f}")

    [recovery] = cluster.manager.recoveries
    print(f"\nrecovery took "
          f"{(recovery['finished_at'] - recovery['started_at']) * 1e3:.0f} ms "
          f"(world-line {recovery['world_line']})")


if __name__ == "__main__":
    main()
