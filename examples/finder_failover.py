"""The hybrid cut finder surviving a coordinator crash (§3.4).

The exact algorithm gives the freshest cuts but needs the precedence
graph; keeping the graph only in coordinator memory removes the durable
write bottleneck — at the price that a coordinator crash loses it.
The hybrid finder runs the approximate (min-version) algorithm in
parallel as the fault-tolerant fallback: after a crash, the exact pass
stalls, the approximate floor keeps advancing, and once it passes the
lost subgraph the exact pass resumes at full precision.

Run:  python examples/finder_failover.py
"""

from repro.core import InMemoryStateObject
from repro.core.finder import HybridDprFinder
from repro.core.libdpr import DprClientSession, DprServer


def main():
    finder = HybridDprFinder()
    shards = {name: InMemoryStateObject(name) for name in ("A", "B")}
    servers = {name: DprServer(shard, finder)
               for name, shard in shards.items()}
    session = DprClientSession("app")

    def do(shard, *ops):
        header = session.prepare_batch(shard, len(ops))
        return session.absorb_response(
            servers[shard].process_batch(header, list(ops)))

    def work_and_commit(rounds):
        for index in range(rounds):
            target = "A" if index % 2 == 0 else "B"
            do(target, ("incr", "counter"))
        for server in servers.values():
            server.commit()

    # Normal operation: the in-memory graph gives exact cuts.  Shard A
    # is busier and checkpoints more often, so its version runs ahead —
    # precisely the situation where the exact graph beats the
    # min-version rule.
    work_and_commit(4)
    for _extra in range(4):
        do("A", ("incr", "hot"))
        servers["A"].commit()
    cut = finder.tick()
    print(f"healthy coordinator:   cut={cut} (exact: A leads B)")

    # The coordinator crashes; its in-memory graph is gone.  The crash
    # horizon is A's high version; the approximate floor is B's low one.
    finder.crash_coordinator()
    print("coordinator crashed — precedence graph lost")

    # The restarted coordinator cannot trust anything referencing the
    # lost subgraph: its cut is frozen until the approximate Vmin
    # passes the crash horizon (B is still at version 1).
    stalled = finder.tick()
    print(f"right after restart:   cut={stalled} "
          f"(frozen; recovered={finder.recovered})")
    assert not finder.recovered

    # Ordinary cross-shard traffic heals it: the session's Vs drags B's
    # version up past the horizon at its next commits.
    work_and_commit(4)

    # The approximate min-version keeps advancing as shards commit and
    # fast-forward; once it passes the crash horizon, exact resumes.
    for _round in range(4):
        for server in servers.values():
            server.fast_forward_to_vmax()
        work_and_commit(2)
        cut = finder.tick()
        print(f"  catching up:         cut={cut} recovered={finder.recovered}")
        if finder.recovered:
            break
    assert finder.recovered
    session.refresh_commit(finder.current_cut())
    print(f"exact precision restored; session committed prefix = "
          f"{session.committed_seqno}/{session.session.last_issued_seqno}")


if __name__ == "__main__":
    main()
