"""The paper's Example 2: a serverless workflow over a persistent log.

A workflow of operators (resize -> caption -> publish) communicates
through queues on a sharded cache-store (Redis lists standing in for
Kafka topics).  Without DPR, every enqueue would synchronously wait for
a commit; with DPR, a downstream operator dequeues its predecessor's
*uncommitted* enqueues immediately — sub-millisecond handoff — while
the workflow engine only exposes results to the outside world once the
whole chain's prefix commits.

The failure scenario shows the payoff: a crash mid-workflow rolls all
queues back to a consistent prefix, so no operator ever observes a
message whose upstream cause was lost.

Run:  python examples/serverless_workflow.py
"""

from repro.core.finder import ApproximateDprFinder
from repro.core.libdpr import DprClientSession, DprServer
from repro.core.recovery import RecoveryController
from repro.redisclone.state_object import RedisStateObject

TOPICS = ("uploads", "resized", "captioned", "published")


def build():
    finder = ApproximateDprFinder()
    shards = {topic: RedisStateObject(topic) for topic in TOPICS}
    servers = {name: DprServer(shard, finder)
               for name, shard in shards.items()}
    return finder, shards, servers


class Operator:
    """A serverless function instance: dequeue, transform, enqueue."""

    def __init__(self, name, servers, source, sink, transform):
        self.name = name
        self.servers = servers
        self.source = source
        self.sink = sink
        self.transform = transform
        self.session = DprClientSession(f"op/{name}")

    def _call(self, shard, *ops):
        header = self.session.prepare_batch(shard, len(ops))
        return self.session.absorb_response(
            self.servers[shard].process_batch(header, list(ops)))

    def poll(self):
        """Process one message if available; returns what it produced."""
        message = self._call(self.source, ("LPOP", f"q:{self.source}"))[0]
        if message is None:
            return None
        output = self.transform(message)
        self._call(self.sink, ("RPUSH", f"q:{self.sink}", output))
        return output


def enqueue_upload(servers, session, item):
    header = session.prepare_batch("uploads", 1)
    session.absorb_response(servers["uploads"].process_batch(
        header, [("RPUSH", "q:uploads", item)]))


def main():
    finder, shards, servers = build()

    resize = Operator("resize", servers, "uploads", "resized",
                      lambda m: f"{m}|resized")
    caption = Operator("caption", servers, "resized", "captioned",
                       lambda m: f"{m}|captioned")
    publish = Operator("publish", servers, "captioned", "published",
                       lambda m: f"{m}|LIVE")

    ingress = DprClientSession("ingress")
    enqueue_upload(servers, ingress, "cat.jpg")

    # The whole chain runs on *uncommitted* state: each operator sees
    # its predecessor's enqueue without any commit in between.
    for operator in (resize, caption, publish):
        produced = operator.poll()
        print(f"{operator.name:8s} -> {produced}")

    # The engine exposes the result only once the prefix commits.
    for server in servers.values():
        server.commit()
    cut = finder.tick()
    publish.session.refresh_commit(cut)
    print(f"workflow committed under cut {cut}: result visible to users")
    assert publish.session.committed_seqno == 2

    # Second item: crash after resize but before any commit.
    enqueue_upload(servers, ingress, "dog.jpg")
    resize.poll()
    controller = RecoveryController(finder)
    controller.recover(shards)
    for operator in (resize, caption, publish):
        operator.session.observe_failure(controller.world_line, cut)
        operator.session.acknowledge_rollback()
    ingress.observe_failure(controller.world_line, cut)
    ingress.acknowledge_rollback()

    # The half-processed item vanished from every queue consistently —
    # the upload AND the resized copy — so replaying from the source is
    # safe and no operator saw an orphaned message.
    uploads = shards["uploads"].server.execute(("LRANGE", "q:uploads", 0, -1))
    resized = shards["resized"].server.execute(("LRANGE", "q:resized", 0, -1))
    published = shards["published"].server.execute(
        ("LRANGE", "q:published", 0, -1))
    print(f"after crash: uploads={uploads} resized={resized} "
          f"published={published}")
    assert uploads == [] and resized == []
    assert published == ["cat.jpg|resized|captioned|LIVE"]
    print("the committed workflow survived; the in-flight one rolled "
          "back atomically")


if __name__ == "__main__":
    main()
