"""The paper's Example 1: a cloud-telemetry pipeline on DPR.

Three services share a D-Redis-style cache-store through separate
sessions:

- an *ingest* service inserts raw telemetry points;
- an *aggregation* service reads uncommitted points and writes back
  per-key aggregates — DPR guarantees the aggregates cannot commit
  unless the contributing data commits too (the aggregate's version
  depends on the ingest versions it read);
- a *fault-detection* service reads aggregates and writes a fault
  report with the same guarantee.

The demo shows both sides of the guarantee: the dependency chain
commits together once the ingest shard commits, and when a failure
strikes first, the report rolls back *with* its inputs — no dangling
report built on lost data.

Run:  python examples/cloud_telemetry.py
"""

from repro.core.finder import ExactDprFinder
from repro.core.libdpr import DprClientSession, DprServer
from repro.core.recovery import RecoveryController
from repro.redisclone.state_object import RedisStateObject


def build():
    finder = ExactDprFinder()
    shards = {
        "telemetry": RedisStateObject("telemetry"),
        "aggregates": RedisStateObject("aggregates"),
        "reports": RedisStateObject("reports"),
    }
    servers = {name: DprServer(shard, finder)
               for name, shard in shards.items()}
    return finder, shards, servers


def call(session, servers, shard, *ops):
    header = session.prepare_batch(shard, len(ops))
    return session.absorb_response(
        servers[shard].process_batch(header, list(ops)))


def pipeline(session_suffix, servers, device_id, readings):
    """Run ingest -> aggregate -> report for one device."""
    ingest = DprClientSession(f"ingest/{session_suffix}")
    aggregate = DprClientSession(f"aggregate/{session_suffix}")
    detect = DprClientSession(f"detect/{session_suffix}")

    # Ingest raw points (uncommitted, immediately visible).
    for index, value in enumerate(readings):
        call(ingest, servers, "telemetry",
             ("RPUSH", f"points:{device_id}", str(value)))

    # The aggregation service reads *uncommitted* telemetry and writes
    # the aggregate; reading stamps its session with the telemetry
    # shard's version, so the subsequent write carries the dependency.
    points = call(aggregate, servers, "telemetry",
                  ("LRANGE", f"points:{device_id}", 0, -1))[0]
    peak = max(float(p) for p in points)
    call(aggregate, servers, "aggregates",
         ("SET", f"peak:{device_id}", str(peak)))

    # Fault detection reads the (still uncommitted) aggregate and files
    # a report; its commit now transitively depends on the raw data.
    observed = call(detect, servers, "aggregates",
                    ("GET", f"peak:{device_id}"))[0]
    if float(observed) > 90.0:
        call(detect, servers, "reports",
             ("SET", f"alert:{device_id}", f"overheat peak={observed}"))
    return ingest, aggregate, detect


def main():
    finder, shards, servers = build()

    ingest, aggregate, detect = pipeline("d1", servers, "device-1",
                                         [71.0, 95.5, 88.2])

    # Commit only the downstream shards: the report CANNOT commit yet,
    # because its version depends on the telemetry shard's version.
    servers["aggregates"].commit()
    servers["reports"].commit()
    cut = finder.tick()
    detect.refresh_commit(cut)
    print(f"cut with telemetry uncommitted: {cut}")
    print(f"  report committed? {detect.committed_seqno >= 2}  "
          "(no — it depends on uncommitted telemetry)")

    # Commit the telemetry shard: the whole chain commits.
    servers["telemetry"].commit()
    cut = finder.tick()
    detect.refresh_commit(cut)
    print(f"cut after telemetry commit:     {cut}")
    print(f"  report committed? {detect.committed_seqno >= 2}")
    assert detect.committed_seqno >= 2

    # Second device: same pipeline, but a failure before the telemetry
    # commit.  Prefix recovery erases the report together with the data
    # it was built from.
    pipeline("d2", servers, "device-2", [99.9, 97.0])
    controller = RecoveryController(finder)
    controller.recover(shards)
    alert = shards["reports"].get("alert:device-2")
    data = shards["telemetry"].server.execute(
        ("LRANGE", "points:device-2", 0, -1))
    print(f"after failure: device-2 data={data}  alert={alert}")
    assert alert is None and data == []
    # Device-1's committed chain is intact.
    assert shards["reports"].get("alert:device-1") is not None
    print("device-1's committed alert survived:",
          shards["reports"].get("alert:device-1"))


if __name__ == "__main__":
    main()
